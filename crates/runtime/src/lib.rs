//! # rtpl-runtime — concurrent plan cache + adaptive policy service
//!
//! The paper's whole economic argument is amortization: the inspector's
//! dependence analysis and topological sort are paid **once** per loop
//! structure and recovered over many executions. The library crates below
//! this one implement the mechanism (plan once, run many), but every caller
//! still had to *hold on to* its `PlannedLoop` and hand-pick an executor
//! discipline. This crate closes that loop and turns the workspace into a
//! multi-client **solver service**:
//!
//! * plans are remembered **across requests** in a sharded, LRU-bounded
//!   concurrent cache keyed by [`PatternFingerprint`] — the structural
//!   128-bit hash of the sparsity pattern, values excluded — so any client
//!   presenting a structure that has been seen before skips inspection
//!   entirely;
//! * the executor discipline is chosen **per pattern by a cost model**, not
//!   by a constructor argument: the §4/§5 cost accounting of `rtpl-sim`,
//!   seeded by `calibrate_host` measurements at startup, predicts each
//!   policy's time, and the measured [`ExecReport`]s of real runs refine
//!   the choice online — the first run of a pattern may explore, the steady
//!   state exploits;
//! * cached plans are **compiled** (`rtpl_krylov::CompiledTriSolve` over
//!   `rtpl_executor::compiled::CompiledPlan`): the schedule is baked into
//!   the data layout at build time — operand indices pre-remapped into
//!   plan space, per-processor segments contiguous, values attached by a
//!   one-pass gather — and split into an immutable shared part and a
//!   leasable scratch, so **concurrent requests for the same hot pattern
//!   run in parallel** instead of serializing on an entry lock.
//!
//! ## Architecture
//!
//! ```text
//!  clients (any number of threads)
//!     │  solve(&IluFactors, b, x) / run(&Csr, body, out)
//!     ▼
//!  ┌─────────────────────────── Runtime ───────────────────────────┐
//!  │                                                               │
//!  │  PatternFingerprint(structure)      ┌──────────────────────┐  │
//!  │        │                            │ PolicySelector       │  │
//!  │        ▼                            │  CostModel from      │  │
//!  │  ┌── PlanCache (N shards) ───┐      │  calibrate_host();   │  │
//!  │  │ shard₀: fp → Slot         │      │  rtpl-sim predicts   │  │
//!  │  │ shard₁: fp → Slot   LRU   │      │  each policy's time  │  │
//!  │  │   …     (build-once,      │      └─────────┬────────────┘  │
//!  │  │ shardₙ:  hit/miss/evict)  │                │ prior          │
//!  │  └───────────┬───────────────┘                ▼                │
//!  │              │ Arc<Slot>            ┌──────────────────────┐  │
//!  │              ▼                      │ AdaptiveState (per   │  │
//!  │  TriangularSolvePlan / PlannedLoop  │ pattern): explore →  │  │
//!  │  (structure only; values and       ─┤ exploit, refined by  │  │
//!  │   policy supplied per call)         │ observed ExecReports │  │
//!  │              │                      └──────────────────────┘  │
//!  │              ▼                                                 │
//!  │  CompiledTriSolve / PlannedLoop — immutable, shared by every  │
//!  │  in-flight request; each request leases a RunScratch (entry   │
//!  │  LeasePool) + a WorkerPool (PoolSet), so same-pattern and     │
//!  │  different-pattern requests all run in parallel               │
//!  └───────────────────────────────────────────────────────────────┘
//!     │
//!     ▼
//!  ExecReport ──────────────► observe() ──► next choice
//! ```
//!
//! ## Front doors
//!
//! * [`Runtime::solve`] — cached parallel `L U x = b` for any
//!   [`IluFactors`]: first request with a new pattern inspects both sweeps
//!   and builds a [`TriangularSolvePlan`]; every later request (any values,
//!   any thread) reuses it.
//! * [`Runtime::run`] — cached generic planned loop for any
//!   lower-triangular dependence structure and [`LoopBody`].
//! * [`Runtime::preconditioner`] — adapter implementing
//!   [`rtpl_krylov::Precondition`], so the Krylov solvers' ILU
//!   applications go through the cache (two patterns per factorization,
//!   hit on every iteration after the first).
//!
//! ```
//! use rtpl_runtime::{Runtime, RuntimeConfig};
//! use rtpl_sparse::{gen::laplacian_5pt, ilu0};
//!
//! let rt = Runtime::new(RuntimeConfig {
//!     nprocs: 2,
//!     calibrate: false, // tests: abstract cost model, no startup timing
//!     ..RuntimeConfig::default()
//! });
//! let f = ilu0(&laplacian_5pt(8, 8)).unwrap();
//! let b = vec![1.0; f.n()];
//! let mut x = vec![0.0; f.n()];
//! let cold = rt.solve(&f, &b, &mut x).unwrap();
//! assert!(!cold.cached);
//! let warm = rt.solve(&f, &b, &mut x).unwrap();
//! assert!(warm.cached);
//! assert_eq!(rt.stats().solves.builds, 1);
//! ```
//!
//! Concurrency contract: a cached entry holds one **immutable** compiled
//! plan plus a [`pools::LeasePool`] of per-run scratches (epoch-stamped
//! buffers, gathered values). Any number of requests — same pattern or
//! different — proceed fully in parallel; each leases a scratch and a
//! worker pool for the duration of its run and returns both. Overlap is
//! observable, not just possible: [`SolveOutcome::concurrent`] and
//! [`RuntimeStats::peak_same_pattern`] count in-flight requests per
//! pattern (≥ 2 proves the head of the Zipf curve no longer serializes).
//!
//! [`PatternFingerprint`]: rtpl_sparse::PatternFingerprint
//! [`ExecReport`]: rtpl_executor::ExecReport
//! [`IluFactors`]: rtpl_sparse::ilu::IluFactors
//! [`TriangularSolvePlan`]: rtpl_krylov::TriangularSolvePlan
//! [`LoopBody`]: rtpl_executor::LoopBody

pub mod cache;
pub mod pools;
pub mod selector;
pub mod service;

pub use cache::{CacheStats, PlanCache};
pub use selector::{AdaptiveState, PolicySelector, ARMS};
pub use service::{CachedIlu, RunOutcome, Runtime, RuntimeConfig, RuntimeStats, SolveOutcome};

/// Errors surfaced by the runtime service.
///
/// `Clone` is required so a failed plan construction can be reported to
/// every thread that was waiting on the same cache slot.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Plan construction or execution failed in the solver layer.
    Krylov(rtpl_krylov::KrylovError),
    /// Dependence analysis / scheduling failed.
    Inspector(rtpl_inspector::InspectorError),
    /// The input matrix is structurally unusable.
    Sparse(rtpl_sparse::SparseError),
}

impl From<rtpl_krylov::KrylovError> for RuntimeError {
    fn from(e: rtpl_krylov::KrylovError) -> Self {
        RuntimeError::Krylov(e)
    }
}

impl From<rtpl_inspector::InspectorError> for RuntimeError {
    fn from(e: rtpl_inspector::InspectorError) -> Self {
        RuntimeError::Inspector(e)
    }
}

impl From<rtpl_sparse::SparseError> for RuntimeError {
    fn from(e: rtpl_sparse::SparseError) -> Self {
        RuntimeError::Sparse(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Krylov(e) => write!(f, "solver error: {e}"),
            RuntimeError::Inspector(e) => write!(f, "inspector error: {e}"),
            RuntimeError::Sparse(e) => write!(f, "sparse error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
