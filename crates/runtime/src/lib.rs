//! # rtpl-runtime — concurrent plan cache + adaptive policy service
//!
//! The paper's whole economic argument is amortization: the inspector's
//! dependence analysis and topological sort are paid **once** per loop
//! structure and recovered over many executions. The library crates below
//! this one implement the mechanism (plan once, run many), but every caller
//! still had to *hold on to* its `PlannedLoop` and hand-pick an executor
//! discipline. This crate closes that loop and turns the workspace into a
//! multi-client **solver service**:
//!
//! * plans are remembered **across requests** in a sharded, LRU-bounded
//!   concurrent cache keyed by [`PatternFingerprint`] — the structural
//!   128-bit hash of the sparsity pattern, values excluded — so any client
//!   presenting a structure that has been seen before skips inspection
//!   entirely;
//! * the executor discipline is chosen **per pattern by a cost model**, not
//!   by a constructor argument: the §4/§5 cost accounting of `rtpl-sim`,
//!   seeded by `calibrate_host` measurements at startup, predicts each
//!   policy's time, and the measured [`ExecReport`]s of real runs refine
//!   the choice online — the first run of a pattern may explore, the steady
//!   state exploits;
//! * cached plans are **compiled** (`rtpl_krylov::CompiledTriSolve` over
//!   `rtpl_executor::compiled::CompiledPlan`): the schedule is baked into
//!   the data layout at build time — operand indices pre-remapped into
//!   plan space, per-processor segments contiguous, values attached by a
//!   one-pass gather — and split into an immutable shared part and a
//!   leasable scratch, so **concurrent requests for the same hot pattern
//!   run in parallel** instead of serializing on an entry lock.
//!
//! ## Architecture
//!
//! Every request — single or batched, solve or loop — enters as a
//! [`Job`] and flows through the same stages:
//!
//! ```text
//!  clients (any number of threads)
//!     │ submit(Job) / submit_batch(Vec<Job>) -> BatchOutcome
//!     │   (solve / run / run_spec / run_linear are thin single-job doors)
//!     ▼
//!  ┌─────────────────────────── Runtime ───────────────────────────┐
//!  │  batch scheduler: group jobs by PatternFingerprint,           │
//!  │  cold groups first, fan groups over batch workers             │
//!  │        │ one lookup / pool lease / scratch lease /            │
//!  │        │ selector decision *per group*                        │
//!  │        ▼                                                      │
//!  │  ┌── PlanCache (N shards) ───┐      ┌──────────────────────┐  │
//!  │  │ shard₀: fp → Slot         │      │ PolicySelector       │  │
//!  │  │ shard₁: fp → Slot   LRU   │      │  CostModel from      │  │
//!  │  │   …     (build-once,      │      │  calibrate_host();   │  │
//!  │  │ shardₙ:  hit/miss/evict)  │      │  rtpl-sim predicts   │  │
//!  │  └───────────┬───────────────┘      │  each policy's time  │  │
//!  │              │ Arc<Slot>            └─────────┬────────────┘  │
//!  │              ▼                                │ prior          │
//!  │  CompiledTriSolve / PlannedLoop /             ▼                │
//!  │  CompiledPlan — immutable, shared   ┌──────────────────────┐  │
//!  │  by every in-flight request;        │ AdaptiveState (per   │  │
//!  │  each request/group leases a        │ pattern): explore →  │  │
//!  │  scratch (entry LeasePool) + a      │ exploit + UCB        │  │
//!  │  WorkerPool (PoolSet) — same- and   │ re-exploration, fed  │  │
//!  │  cross-pattern requests all run     │ by observed          │  │
//!  │  in parallel                        │ ExecReports          │  │
//!  └─────────────────────────────────────┴──────────────────────┴──┘
//! ```
//!
//! ## The `Job` front door
//!
//! * [`Runtime::submit`] / [`Runtime::submit_batch`] — the unified entry:
//!   a [`Job`] is a triangular solve ([`JobKind::Solve`]), a generic loop
//!   body over a cacheable [`LoopSpec`] ([`JobKind::Loop`]), or a compiled
//!   linear recurrence ([`JobKind::LinearLoop`]). A batch is scheduled
//!   *across* requests: jobs sharing a fingerprint share one plan, one
//!   pool lease, one selector decision, and (when they also share a
//!   factor object) one value gather; cold inspections are queued ahead
//!   so they pipeline with warm executions on other batch workers.
//!   [`BatchOutcome`] reports per-job outcomes plus batch wall time.
//! * [`Runtime::solve`] — cached parallel `L U x = b` for any
//!   [`IluFactors`]: first request with a new pattern inspects both
//!   sweeps, builds a [`TriangularSolvePlan`] and compiles it; every
//!   later request (any values, any thread) reuses it.
//! * [`Runtime::run`] / [`Runtime::run_spec`] — cached generic planned
//!   loop for any lower-triangular dependence structure (or any
//!   [`LoopSpec`] emitted by `rtpl::DoConsider::into_spec`) and
//!   [`LoopBody`].
//! * [`Runtime::run_linear`] — cached **compiled** linear-recurrence loop
//!   (`x(i) = rhs(i) − Σ aₖ·x(depₖ)`) with per-call coefficient gathers.
//! * [`Runtime::preconditioner`] — adapter implementing
//!   [`rtpl_krylov::Precondition`]; ILU applications enter through
//!   `submit` like every other request, so Krylov iterations hit the
//!   cache from the second application on.
//!
//! ```
//! use rtpl_runtime::{Job, Runtime, RuntimeConfig};
//! use rtpl_sparse::{gen::laplacian_5pt, ilu0};
//!
//! let rt = Runtime::new(RuntimeConfig {
//!     nprocs: 2,
//!     calibrate: false, // tests: abstract cost model, no startup timing
//!     ..RuntimeConfig::default()
//! });
//! let f = ilu0(&laplacian_5pt(8, 8)).unwrap();
//! let (b1, b2) = (vec![1.0; f.n()], vec![2.0; f.n()]);
//! let (mut x1, mut x2) = (vec![0.0; f.n()], vec![0.0; f.n()]);
//! // Two same-structure solves in one batch: one plan build, one group.
//! let out = rt.submit_batch::<rtpl_runtime::NoBody>(vec![
//!     Job::solve(&f, &b1, &mut x1),
//!     Job::solve(&f, &b2, &mut x2),
//! ]);
//! assert_eq!(out.ok_count(), 2);
//! assert_eq!(out.groups, 1);
//! assert_eq!(rt.stats().solves.builds, 1);
//! // Single-job doors remain: a later solve hits the same cache.
//! let warm = rt.solve(&f, &b1, &mut x1).unwrap();
//! assert!(warm.cached);
//! ```
//!
//! ## Persistence: the memory → disk → cold ladder
//!
//! With [`RuntimeConfig::store_path`] set, the plan cache grows a second
//! tier: an `rtpl_store::PlanStore` whose append-only segment file
//! survives restarts. Lookups walk a ladder — a **memory** hit never
//! touches the store (the warm hot path is unchanged); a miss consults
//! the **disk** tier and, on a hit, decodes the persisted
//! `CompiledTriSolve` artifact (skipping dependence analysis, wavefront
//! sort, and schedule validation — the artifact was proven valid before
//! it was spilled); only a store miss goes **cold** and pays the full
//! inspection, after which the artifact is spilled by the store's
//! write-behind flusher. Plans evicted from the bounded memory tier
//! resurrect from disk the same way. The selector's measured per-policy
//! costs travel with each artifact ([`Runtime::persist_learned`]
//! re-spills the current measurements), and a resumed runtime keeps only
//! the measurements its own host's cost model still considers viable.
//! [`Runtime::warm_from_store`] pre-compiles the most-recently-used head
//! of the store on a background thread before traffic arrives.
//!
//! Artifacts are **structure only** — values are gathered fresh from the
//! caller's factors on every solve — so a store-served plan is bit-exact
//! with a freshly inspected one under the same policy. Every store
//! failure (unreadable file, version skew, truncation, checksum
//! mismatch, `nprocs` mismatch) is a typed error counted in
//! [`RuntimeStats::store_load_errors`] and served by cold inspection;
//! none of them can panic the service or corrupt an answer.
//!
//! Concurrency contract: a cached entry holds one **immutable** plan
//! (compiled layouts for solves and linear loops, a [`PlannedLoop`] for
//! generic bodies) plus a [`pools::LeasePool`] of per-run scratches
//! (epoch-stamped buffers, gathered values). Any number of requests —
//! same pattern or different, batched or not — proceed fully in parallel;
//! each leases a scratch and a worker pool for the duration of its run
//! and returns both. Overlap is observable, not just possible:
//! [`SolveOutcome::concurrent`] and [`RuntimeStats::peak_same_pattern`]
//! count in-flight requests per pattern (≥ 2 proves the head of the Zipf
//! curve no longer serializes).
//!
//! ## Failure containment
//!
//! A multi-client service must contain each request's failure to that
//! request. A panicking loop body is caught on the worker that unwound
//! and surfaces as [`RuntimeError::BodyPanicked`] on the failing job's
//! own outcome slot — its batch peers complete bit-exact, the worker
//! pool is health-checked at the next lease and rebuilt if a thread died
//! ([`RuntimeStats::pool_rebuilds`]). [`Job::with_deadline`] attaches a
//! deadline carried into the executors as a cooperative
//! `rtpl_executor::CancelToken`, checked at phase/stride boundaries: an
//! expired job fails typed ([`RuntimeError::DeadlineExceeded`]) without
//! poisoning its plan or pool. Patterns that fail repeatedly trip a
//! per-pattern circuit breaker ([`RuntimeConfig::breaker_threshold`],
//! [`RuntimeConfig::breaker_cooldown`]): further submissions fail fast
//! with [`RuntimeError::CircuitOpen`] until a half-open probe succeeds,
//! so a poisoned pattern cannot monopolize batch workers. All of it is
//! counted — [`RuntimeStats::body_panics`],
//! [`RuntimeStats::deadline_expired`], [`RuntimeStats::circuit_open`] —
//! and rendered by [`RuntimeStats::render_plaintext`].
//!
//! [`PatternFingerprint`]: rtpl_sparse::PatternFingerprint
//! [`ExecReport`]: rtpl_executor::ExecReport
//! [`IluFactors`]: rtpl_sparse::ilu::IluFactors
//! [`TriangularSolvePlan`]: rtpl_krylov::TriangularSolvePlan
//! [`LoopBody`]: rtpl_executor::LoopBody
//! [`PlannedLoop`]: rtpl_executor::PlannedLoop

pub mod batch;
pub mod cache;
pub mod pools;
pub mod selector;
pub mod service;

pub use batch::{BatchOutcome, Job, JobKind, JobOutcome, LoopSpec, NoBody};
pub use cache::{CacheStats, PlanCache};
pub use selector::{AdaptiveState, PolicySelector, ARMS};
pub use service::{CachedIlu, RunOutcome, Runtime, RuntimeConfig, RuntimeStats, SolveOutcome};

/// Errors surfaced by the runtime service.
///
/// `Clone` is required so a failed plan construction can be reported to
/// every thread that was waiting on the same cache slot.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Plan construction or execution failed in the solver layer.
    Krylov(rtpl_krylov::KrylovError),
    /// Dependence analysis / scheduling failed.
    Inspector(rtpl_inspector::InspectorError),
    /// The input matrix is structurally unusable.
    Sparse(rtpl_sparse::SparseError),
    /// The job's loop body panicked mid-run. The panic was contained:
    /// `workers` worker threads unwound, the plan, the scratch, and the
    /// pool all stay usable, and only this job fails.
    BodyPanicked {
        /// Worker threads that unwound (includes peers released by buffer
        /// poisoning, so this may exceed the number of faulty iterations).
        workers: usize,
    },
    /// The job's deadline passed before (or while) it ran; partial output
    /// is unspecified, everything else is untouched.
    DeadlineExceeded,
    /// The job was cancelled through its [`rtpl_executor::CancelToken`].
    Cancelled,
    /// This pattern's circuit breaker is open: its recent builds or runs
    /// kept failing, so requests are rejected cheaply until the cooldown
    /// elapses and a probe request is let through (see
    /// [`RuntimeConfig::breaker_threshold`]).
    ///
    /// [`RuntimeConfig::breaker_threshold`]: crate::RuntimeConfig::breaker_threshold
    CircuitOpen,
}

impl From<rtpl_executor::ExecError> for RuntimeError {
    fn from(e: rtpl_executor::ExecError) -> Self {
        match e {
            rtpl_executor::ExecError::BodyPanicked { workers } => {
                RuntimeError::BodyPanicked { workers }
            }
            rtpl_executor::ExecError::DeadlineExceeded => RuntimeError::DeadlineExceeded,
            rtpl_executor::ExecError::Cancelled => RuntimeError::Cancelled,
        }
    }
}

impl From<rtpl_krylov::KrylovError> for RuntimeError {
    fn from(e: rtpl_krylov::KrylovError) -> Self {
        match e {
            // Contained executor failures keep their own shape — the
            // caller distinguishes "your body panicked" / "your deadline
            // passed" from genuine solver errors.
            rtpl_krylov::KrylovError::Exec(x) => RuntimeError::from(x),
            other => RuntimeError::Krylov(other),
        }
    }
}

impl From<rtpl_inspector::InspectorError> for RuntimeError {
    fn from(e: rtpl_inspector::InspectorError) -> Self {
        RuntimeError::Inspector(e)
    }
}

impl From<rtpl_sparse::SparseError> for RuntimeError {
    fn from(e: rtpl_sparse::SparseError) -> Self {
        RuntimeError::Sparse(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Krylov(e) => write!(f, "solver error: {e}"),
            RuntimeError::Inspector(e) => write!(f, "inspector error: {e}"),
            RuntimeError::Sparse(e) => write!(f, "sparse error: {e}"),
            RuntimeError::BodyPanicked { workers } => {
                write!(f, "loop body panicked ({workers} worker(s) unwound)")
            }
            RuntimeError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            RuntimeError::Cancelled => write!(f, "job cancelled"),
            RuntimeError::CircuitOpen => {
                write!(f, "circuit breaker open for this pattern (cooling down)")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
