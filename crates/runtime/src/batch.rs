//! The batched request pipeline: one [`Job`] front door for solves and
//! `DoConsider`-derived loops, with cross-request scheduling.
//!
//! A long-running solver service rarely receives one request at a time —
//! clients arrive with *batches* of (factors, rhs) pairs and index-array
//! loops. Routing each one through [`Runtime::solve`] pays the full
//! per-request toll every time: a structural fingerprint hash, a cache
//! lookup, a pool lease, a selector decision, and a value gather. A batch
//! knows more: requests sharing a sparsity structure can share almost all
//! of that. [`Runtime::submit_batch`] exploits it —
//!
//! * jobs are **grouped by [`PatternFingerprint`]** (memoized per factor
//!   object, so the hash itself is paid once per distinct input, not per
//!   request);
//! * each group leases **one** worker pool and **one** run scratch, makes
//!   **one** adaptive-selector decision, and folds **one** averaged
//!   observation back — instead of once per request;
//! * consecutive jobs of a group that share a factor (or coefficient)
//!   object skip the per-request value gather — the schedule-order layout
//!   is already loaded;
//! * **cold groups run first**: on a multi-core host with several batch
//!   workers, the expensive inspections of never-seen patterns pipeline
//!   concurrently with warm executions of cached ones.
//!
//! A [`Job`] is one of three requests, all keyed into the same build-once
//! caches as the single-request front doors:
//!
//! * [`JobKind::Solve`] — `L U x = b` for [`IluFactors`] (the
//!   [`Runtime::solve`] path);
//! * [`JobKind::Loop`] — a generic [`LoopBody`] over a cacheable [`LoopSpec`]
//!   (the analysis product `rtpl::DoConsider::into_spec` emits);
//! * [`JobKind::LinearLoop`] — the body-free linear recurrence
//!   `x(i) = rhs(i) − Σ a_k·x(dep_k)`, compiled to a schedule-order
//!   [`CompiledPlan`] layout with per-call coefficient gathers.
//!
//! [`CompiledPlan`]: rtpl_executor::compiled::CompiledPlan

use crate::service::{RunOutcome, Runtime, SolveOutcome};
use crate::Result;
use rtpl_executor::{CancelToken, LoopBody, ValueSource};
use rtpl_inspector::DepGraph;
use rtpl_krylov::ExecutorKind;
use rtpl_sparse::ilu::IluFactors;
use rtpl_sparse::PatternFingerprint;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cacheable inspection product: a dependence structure plus its stable
/// structural key. This is what `DoConsider` emits for the runtime front
/// door (`rtpl::DoConsider::into_spec`) instead of scheduling inline —
/// scheduling, policy selection, and plan reuse across requests are the
/// runtime's job. (Not to be confused with `rtpl::LoopSpec`, the
/// transformer's stack-program IR; that one describes a loop *body*, this
/// one a loop *structure*.)
///
/// The spec is cheap to clone and share (`Arc` inside); a spec built by
/// [`DepGraph::from_lower_triangular`] on a strictly lower-triangular CSR
/// carries the same key as that matrix's pattern fingerprint, so both
/// runtime front doors meet on one cache entry.
#[derive(Clone, Debug)]
pub struct LoopSpec {
    graph: Arc<DepGraph>,
    key: PatternFingerprint,
}

impl LoopSpec {
    /// Wraps an inspected dependence graph with its cache key.
    pub fn new(graph: DepGraph) -> Self {
        let key = graph.fingerprint();
        LoopSpec {
            graph: Arc::new(graph),
            key,
        }
    }

    /// The dependence structure.
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// The structural cache key.
    pub fn key(&self) -> PatternFingerprint {
        self.key
    }
}

/// The placeholder body type of batches that carry no [`JobKind::Loop`] jobs
/// (`Vec<Job>` defaults to it). Never executed.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoBody;

impl LoopBody for NoBody {
    fn eval<S: ValueSource>(&self, _i: usize, _src: &S) -> f64 {
        unreachable!("NoBody is a type-level placeholder; no job carries it")
    }
}

/// One request of a batch: a triangular solve or an index-array loop
/// ([`JobKind`]), each borrowing its inputs and owning (mutably
/// borrowing) its output buffer, plus an optional deadline. Submit
/// through [`Runtime::submit`] / [`Runtime::submit_batch`].
#[derive(Debug)]
pub struct Job<'a, B: LoopBody = NoBody> {
    pub(crate) kind: JobKind<'a, B>,
    pub(crate) deadline: Option<Instant>,
}

/// What a [`Job`] asks for.
#[derive(Debug)]
pub enum JobKind<'a, B: LoopBody = NoBody> {
    /// Solve `L U x = b` through the structure-keyed solve cache.
    Solve {
        /// The factors; only their *structure* keys the cache.
        factors: &'a IluFactors,
        /// Right-hand side.
        b: &'a [f64],
        /// Solution output.
        x: &'a mut [f64],
    },
    /// Run a generic loop body over a cached [`LoopSpec`] structure.
    Loop {
        /// The inspected structure (from `DoConsider::into_spec`).
        spec: &'a LoopSpec,
        /// The loop body (any values, any arithmetic — structure is what
        /// is cached).
        body: &'a B,
        /// Loop output.
        out: &'a mut [f64],
    },
    /// Run the linear recurrence `x(i) = rhs(i) − Σ a_k·x(dep_k)` over a
    /// cached compiled layout; `vals` holds one coefficient per dependence
    /// edge in graph adjacency order.
    LinearLoop {
        /// The inspected structure (from `DoConsider::into_spec`).
        spec: &'a LoopSpec,
        /// Per-edge coefficients, adjacency order
        /// (`spec.graph().num_edges()` of them).
        vals: &'a [f64],
        /// Right-hand side.
        rhs: &'a [f64],
        /// Loop output.
        out: &'a mut [f64],
    },
}

impl<'a, B: LoopBody> Job<'a, B> {
    /// A triangular-solve job.
    pub fn solve(factors: &'a IluFactors, b: &'a [f64], x: &'a mut [f64]) -> Self {
        Job {
            kind: JobKind::Solve { factors, b, x },
            deadline: None,
        }
    }

    /// A generic-body loop job.
    pub fn looped(spec: &'a LoopSpec, body: &'a B, out: &'a mut [f64]) -> Self {
        Job {
            kind: JobKind::Loop { spec, body, out },
            deadline: None,
        }
    }

    /// A compiled linear-recurrence loop job.
    pub fn linear(spec: &'a LoopSpec, vals: &'a [f64], rhs: &'a [f64], out: &'a mut [f64]) -> Self {
        Job {
            kind: JobKind::LinearLoop {
                spec,
                vals,
                rhs,
                out,
            },
            deadline: None,
        }
    }

    /// Attaches a deadline: a job not *finished* by `deadline` is
    /// interrupted at the executors' cancellation points (phase and
    /// stride boundaries) and answered with
    /// [`crate::RuntimeError::DeadlineExceeded`]; a job whose deadline
    /// has already passed when its turn comes is rejected without
    /// running. Expiry never disturbs the other jobs of a batch.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The job's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// What the job asks for.
    pub fn kind(&self) -> &JobKind<'a, B> {
        &self.kind
    }
}

/// The outcome of one [`Job`]: the matching front door's report.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// A [`JobKind::Solve`] ran (see [`SolveOutcome`]).
    Solve(SolveOutcome),
    /// A [`JobKind::Loop`] or [`JobKind::LinearLoop`] ran (see [`RunOutcome`]).
    Loop(RunOutcome),
}

impl JobOutcome {
    /// Discipline the job ran under.
    pub fn policy(&self) -> ExecutorKind {
        match self {
            JobOutcome::Solve(s) => s.policy,
            JobOutcome::Loop(r) => r.policy,
        }
    }

    /// `true` when the job's plan came from the cache (no inspection).
    pub fn cached(&self) -> bool {
        match self {
            JobOutcome::Solve(s) => s.cached,
            JobOutcome::Loop(r) => r.cached,
        }
    }

    /// The structure key the job was served under.
    pub fn pattern(&self) -> PatternFingerprint {
        match self {
            JobOutcome::Solve(s) => s.pattern,
            JobOutcome::Loop(r) => r.pattern,
        }
    }
}

/// What one [`Runtime::submit_batch`] call did: per-job outcomes in
/// submission order plus the whole-batch accounting the bench reports
/// requests/sec from.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job results, indexed exactly as the submitted `Vec<Job>`. A
    /// failing job (e.g. a zero pivot) never sinks its batch — the other
    /// jobs of its group and batch still run.
    pub jobs: Vec<Result<JobOutcome>>,
    /// Wall time of the whole batch, fingerprinting to final output.
    pub wall: Duration,
    /// Distinct fingerprint groups the batch scheduler formed.
    pub groups: usize,
    /// Groups whose pattern was not cached when the batch started (their
    /// inspections are scheduled first, to pipeline with warm execution).
    pub cold_groups: usize,
    /// Batch worker threads used (1 = inline on the submitting thread).
    pub workers: usize,
}

impl BatchOutcome {
    /// Successful jobs.
    pub fn ok_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_ok()).count()
    }

    /// Aggregate throughput of the batch.
    pub fn requests_per_sec(&self) -> f64 {
        self.jobs.len() as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Discriminates the three cache namespaces a job can key into.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum JobClass {
    Solve,
    Loop,
    Linear,
}

/// One fingerprint group: same class, same key, jobs in submission order.
struct Group<'j, B: LoopBody> {
    class: JobClass,
    key: PatternFingerprint,
    warm: bool,
    jobs: Vec<(usize, Job<'j, B>)>,
}

impl Runtime {
    /// Submits one [`Job`] — the unified front door over
    /// [`Runtime::solve`], [`Runtime::run_spec`] and
    /// [`Runtime::run_linear`] — with the service's failure containment:
    /// deadlines are enforced, panicking bodies come back as
    /// [`crate::RuntimeError::BodyPanicked`], and a pattern whose
    /// requests keep failing trips its circuit breaker.
    pub fn submit<B: LoopBody>(&self, job: Job<'_, B>) -> Result<JobOutcome> {
        let key = match &job.kind {
            JobKind::Solve { factors, .. } => Self::solve_key(factors),
            JobKind::Loop { spec, .. } | JobKind::LinearLoop { spec, .. } => spec.key(),
        };
        self.breaker_admit(key)?;
        let token = job.deadline.map(CancelToken::with_deadline);
        let r = match job.kind {
            JobKind::Solve { factors, b, x } => self
                .solve_with_cancel(factors, b, x, token.as_ref())
                .map(JobOutcome::Solve),
            JobKind::Loop { spec, body, out } => self
                .run_spec_with_cancel(spec, body, out, token.as_ref())
                .map(JobOutcome::Loop),
            JobKind::LinearLoop {
                spec,
                vals,
                rhs,
                out,
            } => self
                .run_linear_with_cancel(spec, vals, rhs, out, token.as_ref())
                .map(JobOutcome::Loop),
        };
        self.breaker_note(key, &r);
        if let Err(e) = &r {
            self.count_error(e);
        }
        r
    }

    /// Submits a batch of jobs and schedules them **across requests**:
    /// jobs are grouped by structural fingerprint; each group pays one
    /// cache lookup, one pool lease, one scratch lease, and one selector
    /// decision; groups over never-seen patterns are dispatched first so
    /// their inspections pipeline with warm executions when several batch
    /// workers are available ([`crate::RuntimeConfig::batch_workers`]).
    /// Outcomes come back in submission order; per-job failures are
    /// per-job `Err`s, never a batch abort.
    pub fn submit_batch<B: LoopBody>(&self, jobs: Vec<Job<'_, B>>) -> BatchOutcome {
        let t0 = Instant::now();
        let njobs = jobs.len();
        if njobs == 0 {
            return BatchOutcome {
                jobs: Vec::new(),
                wall: t0.elapsed(),
                groups: 0,
                cold_groups: 0,
                workers: 0,
            };
        }

        // Group by (class, fingerprint). The fingerprint hash is O(nnz),
        // so it is memoized per distinct factor *object* — a Zipf batch
        // replaying K patterns hashes K times, not once per request.
        let mut fp_memo: HashMap<*const IluFactors, PatternFingerprint> = HashMap::new();
        let mut group_of: HashMap<(JobClass, u128), usize> = HashMap::new();
        let mut groups: Vec<Group<'_, B>> = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            let (class, key) = match &job.kind {
                JobKind::Solve { factors, .. } => {
                    let ptr: *const IluFactors = *factors;
                    let key = *fp_memo
                        .entry(ptr)
                        .or_insert_with(|| Self::solve_key(factors));
                    (JobClass::Solve, key)
                }
                JobKind::Loop { spec, .. } => (JobClass::Loop, spec.key()),
                JobKind::LinearLoop { spec, .. } => (JobClass::Linear, spec.key()),
            };
            let gi = *group_of.entry((class, key.as_u128())).or_insert_with(|| {
                let warm = match class {
                    JobClass::Solve => self.solves.contains(key),
                    JobClass::Loop => self.loops.contains(key),
                    JobClass::Linear => self.linears.contains(key),
                };
                groups.push(Group {
                    class,
                    key,
                    warm,
                    jobs: Vec::new(),
                });
                groups.len() - 1
            });
            groups[gi].jobs.push((i, job));
        }
        let ngroups = groups.len();
        let cold_groups = groups.iter().filter(|g| !g.warm).count();
        // Cold groups (the long-pole inspections) to the front of the
        // queue: workers that pull them build plans while other workers
        // drain the warm groups concurrently.
        groups.sort_by_key(|g| g.warm);

        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let workers = match self.cfg.batch_workers {
            0 => auto,
            w => w,
        }
        .min(ngroups)
        .max(1);

        let queue = Mutex::new(VecDeque::from(groups));
        let results: Mutex<Vec<(usize, Result<JobOutcome>)>> =
            Mutex::new(Vec::with_capacity(njobs));
        let drain = || loop {
            let group = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
            let Some(group) = group else { break };
            let outcomes = self.run_group(group);
            results
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(outcomes);
        };
        if workers == 1 {
            drain();
        } else {
            // The submitting thread is one of the workers: spawn only the
            // extras, drain inline, and the scope joins the rest.
            std::thread::scope(|scope| {
                for _ in 0..workers - 1 {
                    scope.spawn(drain);
                }
                drain();
            });
        }

        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_jobs.fetch_add(njobs as u64, Ordering::Relaxed);

        let mut slots: Vec<Option<Result<JobOutcome>>> = (0..njobs).map(|_| None).collect();
        for (i, r) in results.into_inner().unwrap_or_else(|e| e.into_inner()) {
            slots[i] = Some(r);
        }
        BatchOutcome {
            jobs: slots
                .into_iter()
                .map(|s| s.expect("invariant: every submitted job produces exactly one outcome"))
                .collect(),
            wall: t0.elapsed(),
            groups: ngroups,
            cold_groups,
            workers,
        }
    }

    /// Runs one fingerprint group, amortizing lookup, leases, selector
    /// traffic, and (where inputs repeat) value gathers over its jobs.
    fn run_group<B: LoopBody>(&self, group: Group<'_, B>) -> Vec<(usize, Result<JobOutcome>)> {
        match group.class {
            JobClass::Solve => self.run_solve_group(group.key, group.jobs),
            JobClass::Loop => self.run_loop_group(group.key, group.jobs),
            JobClass::Linear => self.run_linear_group(group.key, group.jobs),
        }
    }

    fn run_solve_group<B: LoopBody>(
        &self,
        key: PatternFingerprint,
        jobs: Vec<(usize, Job<'_, B>)>,
    ) -> Vec<(usize, Result<JobOutcome>)> {
        if let Err(e) = self.breaker_admit(key) {
            return fail_all(jobs, e);
        }
        let first = match &jobs[0].1.kind {
            JobKind::Solve { factors, .. } => *factors,
            _ => unreachable!("solve group holds solve jobs"),
        };
        let mut built = false;
        let slot = self.solves.get_or_build(key, || {
            built = true;
            self.build_solve_entry(first)
        });
        let slot = match slot {
            Ok(s) => s,
            // A solve plan build reads *values* too (the zero-pivot check
            // and `U`'s diagonal inversion happen at plan time), so one
            // value-poisoned job must not sink its same-pattern peers:
            // fall back to the per-job front door, which retries the
            // build with each job's own factors (failed builds are
            // un-cached and retriable). Amortization is lost only on this
            // error path.
            Err(_) => {
                return jobs
                    .into_iter()
                    .map(|(i, job)| {
                        let deadline = job.deadline;
                        let JobKind::Solve { factors, b, x } = job.kind else {
                            unreachable!("solve group holds solve jobs")
                        };
                        let token = deadline.map(CancelToken::with_deadline);
                        let r = self
                            .solve_with_cancel(factors, b, x, token.as_ref())
                            .map(JobOutcome::Solve);
                        self.note_job_result(key, &r);
                        (i, r)
                    })
                    .collect();
            }
        };
        let entry = slot.get();
        let kind = self.choose_policy(&entry.adaptive);
        let (mut scratch, info) = entry.scratches.lease(|| entry.compiled.scratch());
        self.note_lease(info);
        let lease = kind.policy().map(|_| self.pools.lease());
        // Sequential group leaders: a factor object appearing exactly once
        // in the group gains nothing from the gather + run split (its
        // gather would serve only itself), so such jobs take the one-pass
        // fused sweep instead. Factors shared by two or more jobs keep the
        // split path — one gather amortizes over all of them. The fused
        // sweep never touches the scratch's loaded values, so the `loaded`
        // memo stays valid across the mix.
        let mut ptr_uses: HashMap<*const IluFactors, u32> = HashMap::new();
        if kind == ExecutorKind::Sequential {
            for (_, job) in &jobs {
                if let JobKind::Solve { factors, .. } = &job.kind {
                    let ptr: *const IluFactors = *factors;
                    *ptr_uses.entry(ptr).or_insert(0) += 1;
                }
            }
        }
        let mut loaded: Option<*const IluFactors> = None;
        let (mut wall_sum, mut runs) = (0.0f64, 0u64);
        let mut out = Vec::with_capacity(jobs.len());
        for (i, job) in jobs {
            let deadline = job.deadline;
            let JobKind::Solve { factors, b, x } = job.kind else {
                unreachable!("solve group holds solve jobs")
            };
            let ptr: *const IluFactors = factors;
            let token = deadline.map(CancelToken::with_deadline);
            let r = (|| {
                let (fwd, bwd) = if ptr_uses.get(&ptr) == Some(&1) {
                    if let Some(cause) = token.as_ref().and_then(CancelToken::check) {
                        return Err(crate::RuntimeError::from(cause));
                    }
                    entry
                        .compiled
                        .solve_fused_sequential(factors, b, x, &mut scratch)?
                } else {
                    if loaded != Some(ptr) {
                        loaded = None;
                        entry.compiled.load_values(factors, &mut scratch)?;
                        loaded = Some(ptr);
                    }
                    entry.compiled.solve_loaded_cancellable(
                        lease.as_deref(),
                        kind,
                        b,
                        x,
                        &mut scratch,
                        token.as_ref(),
                    )?
                };
                wall_sum += (fwd.wall + bwd.wall).as_nanos() as f64;
                runs += 1;
                Ok(JobOutcome::Solve(SolveOutcome {
                    policy: kind,
                    cached: !std::mem::take(&mut built),
                    pattern: key,
                    concurrent: info.active,
                    reports: (fwd, bwd),
                }))
            })();
            self.note_job_result(key, &r);
            out.push((i, r));
        }
        drop(scratch);
        self.observe_group(&entry.adaptive, kind, wall_sum, runs);
        out
    }

    /// Per-job epilogue of the batched runners: failure counters and the
    /// pattern's circuit.
    fn note_job_result(&self, key: PatternFingerprint, r: &Result<JobOutcome>) {
        self.breaker_note(key, r);
        if let Err(e) = r {
            self.count_error(e);
        }
    }

    fn run_loop_group<B: LoopBody>(
        &self,
        key: PatternFingerprint,
        jobs: Vec<(usize, Job<'_, B>)>,
    ) -> Vec<(usize, Result<JobOutcome>)> {
        if let Err(e) = self.breaker_admit(key) {
            return fail_all(jobs, e);
        }
        let spec = match &jobs[0].1.kind {
            JobKind::Loop { spec, .. } => *spec,
            _ => unreachable!("loop group holds loop jobs"),
        };
        let mut built = false;
        let slot = self.loops.get_or_build(key, || {
            built = true;
            self.build_loop_entry(spec.graph().clone())
        });
        let slot = match slot {
            Ok(s) => s,
            // Loop plans are built from the spec's *structure* alone, so a
            // build failure is identical for every job of the group.
            Err(e) => {
                let out = fail_all(jobs, e);
                for (_, r) in &out {
                    self.note_job_result(key, r);
                }
                return out;
            }
        };
        let entry = slot.get();
        let kind = self.choose_policy(&entry.adaptive);
        let (mut wall_sum, mut runs) = (0.0f64, 0u64);
        let mut results = Vec::with_capacity(jobs.len());
        // Sequential runs write straight to each job's buffer; parallel
        // kinds lease one scratch and one pool for the whole group.
        let leased = match kind.policy() {
            None => None,
            Some(policy) => {
                let (scratch, info) = entry.scratches.lease(|| entry.plan.scratch());
                self.note_lease(info);
                Some((scratch, info, policy, self.pools.lease()))
            }
        };
        let mut track = None;
        let concurrent = match &leased {
            Some((_, info, _, _)) => info.active,
            None => {
                let (guard, active) = entry.scratches.track();
                self.peak_same_pattern.fetch_max(active, Ordering::Relaxed);
                track = Some(guard);
                active
            }
        };
        for (i, job) in jobs {
            let deadline = job.deadline;
            let JobKind::Loop { body, out, .. } = job.kind else {
                unreachable!("loop group holds loop jobs")
            };
            let token = deadline.map(CancelToken::with_deadline);
            let r = (|| {
                let report = match &leased {
                    None => {
                        // Sequential runs have no cancellation points; the
                        // deadline gates entry, and a panicking body
                        // unwinds only to here.
                        if let Some(cause) = token.as_ref().and_then(CancelToken::check) {
                            return Err(crate::RuntimeError::from(cause));
                        }
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            entry.plan.run_sequential(body, out)
                        }))
                        .map_err(|_| crate::RuntimeError::BodyPanicked { workers: 0 })?
                    }
                    Some((scratch, _, policy, pool)) => {
                        entry
                            .plan
                            .try_run_in(scratch, pool, *policy, body, out, token.as_ref())?
                    }
                };
                wall_sum += report.wall.as_nanos() as f64;
                runs += 1;
                Ok(JobOutcome::Loop(RunOutcome {
                    policy: kind,
                    cached: !std::mem::take(&mut built),
                    pattern: key,
                    concurrent,
                    report,
                }))
            })();
            self.note_job_result(key, &r);
            results.push((i, r));
        }
        drop(leased);
        drop(track);
        self.observe_group(&entry.adaptive, kind, wall_sum, runs);
        results
    }

    fn run_linear_group<B: LoopBody>(
        &self,
        key: PatternFingerprint,
        jobs: Vec<(usize, Job<'_, B>)>,
    ) -> Vec<(usize, Result<JobOutcome>)> {
        if let Err(e) = self.breaker_admit(key) {
            return fail_all(jobs, e);
        }
        let spec = match &jobs[0].1.kind {
            JobKind::LinearLoop { spec, .. } => *spec,
            _ => unreachable!("linear group holds linear jobs"),
        };
        let mut built = false;
        let slot = self.linears.get_or_build(key, || {
            built = true;
            self.build_linear_entry(spec)
        });
        let slot = match slot {
            Ok(s) => s,
            // Compiled linear layouts are structure-only too (values only
            // enter at the per-job gather), so the failure is group-wide.
            Err(e) => {
                let out = fail_all(jobs, e);
                for (_, r) in &out {
                    self.note_job_result(key, r);
                }
                return out;
            }
        };
        let entry = slot.get();
        let kind = self.choose_policy(&entry.adaptive);
        let (mut scratch, info) = entry.scratches.lease(|| entry.compiled.scratch());
        self.note_lease(info);
        let lease = kind.policy().map(|p| (p, self.pools.lease()));
        let mut loaded: Option<*const [f64]> = None;
        let (mut wall_sum, mut runs) = (0.0f64, 0u64);
        let mut out_vec = Vec::with_capacity(jobs.len());
        for (i, job) in jobs {
            let deadline = job.deadline;
            let JobKind::LinearLoop { vals, rhs, out, .. } = job.kind else {
                unreachable!("linear group holds linear jobs")
            };
            let ptr: *const [f64] = vals;
            let token = deadline.map(CancelToken::with_deadline);
            let r = (|| {
                if loaded != Some(ptr) {
                    loaded = None;
                    entry
                        .compiled
                        .load_values(&mut scratch, vals)
                        .map_err(crate::service::map_compiled)?;
                    loaded = Some(ptr);
                }
                let report = match &lease {
                    None => {
                        if let Some(cause) = token.as_ref().and_then(CancelToken::check) {
                            return Err(crate::RuntimeError::from(cause));
                        }
                        entry.compiled.run_sequential(&mut scratch, rhs, out)
                    }
                    Some((policy, pool)) => entry.compiled.try_run(
                        pool,
                        *policy,
                        &mut scratch,
                        rhs,
                        out,
                        token.as_ref(),
                    )?,
                };
                wall_sum += report.wall.as_nanos() as f64;
                runs += 1;
                Ok(JobOutcome::Loop(RunOutcome {
                    policy: kind,
                    cached: !std::mem::take(&mut built),
                    pattern: key,
                    concurrent: info.active,
                    report,
                }))
            })();
            self.note_job_result(key, &r);
            out_vec.push((i, r));
        }
        drop(scratch);
        self.observe_group(&entry.adaptive, kind, wall_sum, runs);
        out_vec
    }
}

/// Every job of a group failed to even get a plan: report the build error
/// to each.
fn fail_all<B: LoopBody>(
    jobs: Vec<(usize, Job<'_, B>)>,
    e: crate::RuntimeError,
) -> Vec<(usize, Result<JobOutcome>)> {
    jobs.into_iter().map(|(i, _)| (i, Err(e.clone()))).collect()
}
