//! The sharded, LRU-bounded, build-once concurrent plan cache.
//!
//! `std::sync` only: each shard is a `Mutex<HashMap>` from fingerprint to a
//! shared [`Slot`]; the slot's payload is a `OnceLock`, so the map lock is
//! held only for the lookup/insert — **plan construction runs outside every
//! shard lock**, and `OnceLock::get_or_init` guarantees exactly one
//! construction per slot no matter how many threads miss simultaneously
//! (the losers block until the winner's plan is ready, then share it).
//!
//! The capacity bound is **global** (a resident counter shared by all
//! shards), so a hot working set no larger than the capacity never
//! thrashes even when the fingerprints shard unevenly; the victim is the
//! least-recently-used entry of the inserting shard, driven by a global
//! access clock. Entries still being built are never evicted; entries
//! evicted while in use stay alive through their `Arc` until the last user
//! drops them, so eviction is always safe, merely un-caching.

use crate::Result;
use rtpl_sparse::PatternFingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Snapshot of cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served an existing, successfully built plan.
    pub hits: u64,
    /// Lookups that had to insert a slot, waited on another thread's
    /// build, or were served an error.
    pub misses: u64,
    /// Times a build closure actually ran (≤ misses: threads that land on
    /// a slot mid-construction share the winner's build).
    pub builds: u64,
    /// Entries discarded by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (1.0 for an idle cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached entry: the payload plus its usage counters.
#[derive(Debug)]
pub struct Slot<V> {
    value: OnceLock<Result<V>>,
    hits: AtomicU64,
    last_used: AtomicU64,
}

impl<V> Slot<V> {
    fn new(tick: u64) -> Self {
        Slot {
            value: OnceLock::new(),
            hits: AtomicU64::new(0),
            last_used: AtomicU64::new(tick),
        }
    }

    /// The cached value. Panics if the slot has not finished building or
    /// build failed — [`PlanCache::get_or_build`] only hands out slots in
    /// the built-`Ok` state.
    pub fn get(&self) -> &V {
        self.value
            .get()
            .expect("invariant: slot handed out before construction finished")
            .as_ref()
            .expect("invariant: slot handed out in error state")
    }

    /// How many lookups were served by this entry after its insertion.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// One shard: fingerprint → shared slot.
type Shard<V> = Mutex<HashMap<u128, Arc<Slot<V>>>>;

/// A sharded, LRU-bounded, build-once map from pattern fingerprints to
/// plans.
#[derive(Debug)]
pub struct PlanCache<V> {
    shards: Box<[Shard<V>]>,
    capacity: usize,
    resident: AtomicUsize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    evictions: AtomicU64,
}

impl<V> PlanCache<V> {
    /// A cache of `num_shards` shards bounding `capacity` entries in
    /// total. The bound is global: any single shard may hold more than its
    /// proportional share as long as the whole cache fits.
    pub fn new(num_shards: usize, capacity: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        assert!(capacity >= 1, "capacity must hold at least one entry");
        PlanCache {
            shards: (0..num_shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            capacity,
            resident: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the slot for `key`, building the value with `build` if this
    /// is the first time the pattern is seen (or it has been evicted).
    ///
    /// Exactly one build runs per slot; concurrent callers for the same key
    /// block until it finishes and then share the result. A failed build is
    /// reported to every waiter and the slot is removed, so the pattern can
    /// be retried. Hit/miss counters reflect what the *caller* got: only a
    /// lookup that returns an `Ok` plan from a pre-existing slot counts as
    /// a hit; every error-serving lookup counts as a miss, so `hit_rate()`
    /// never flatters a failing pattern.
    pub fn get_or_build(
        &self,
        key: PatternFingerprint,
        build: impl FnOnce() -> Result<V>,
    ) -> Result<Arc<Slot<V>>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = &self.shards[key.lo() as usize % self.shards.len()];
        let (slot, found) = {
            let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(slot) = map.get(&key.as_u128()) {
                slot.last_used.store(tick, Ordering::Relaxed);
                (Arc::clone(slot), true)
            } else {
                if self.resident.load(Ordering::Relaxed) >= self.capacity {
                    self.evict_lru(&mut map);
                }
                let slot = Arc::new(Slot::new(tick));
                map.insert(key.as_u128(), Arc::clone(&slot));
                self.resident.fetch_add(1, Ordering::Relaxed);
                (slot, false)
            }
        };
        // Construction happens here, outside the shard lock: other keys of
        // this shard stay serviceable while an expensive inspection runs.
        let outcome = slot.value.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            build()
        });
        match outcome {
            Ok(_) => {
                if found {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    slot.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                Ok(slot)
            }
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                // Un-cache the failure so the pattern can be retried;
                // everyone already waiting still sees this error.
                let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(current) = map.get(&key.as_u128()) {
                    if Arc::ptr_eq(current, &slot) {
                        map.remove(&key.as_u128());
                        self.resident.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(e.clone())
            }
        }
    }

    /// Evicts the least-recently-used **built** entry of the inserting
    /// shard (in-flight builds are untouchable; if every local entry is
    /// mid-build the cache temporarily overflows). Victim selection is
    /// shard-local by design — the global bound stays exact through the
    /// resident counter, while eviction needs no cross-shard locking.
    fn evict_lru(&self, map: &mut HashMap<u128, Arc<Slot<V>>>) {
        let victim = map
            .iter()
            .filter(|(_, s)| s.value.get().is_some())
            .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
            .map(|(&k, _)| k);
        if let Some(k) = victim {
            map.remove(&k);
            self.resident.fetch_sub(1, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True when `key` is resident with a successfully built value — a
    /// peek that bumps no LRU clock and takes no slot reference. The batch
    /// scheduler uses it to order cold groups (long-pole inspections)
    /// ahead of warm ones; by the time a cold group runs the answer may
    /// have changed, which only affects ordering, never correctness.
    pub fn contains(&self, key: PatternFingerprint) -> bool {
        let shard = &self.shards[key.lo() as usize % self.shards.len()];
        let map = shard.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&key.as_u128())
            .is_some_and(|slot| matches!(slot.value.get(), Some(Ok(_))))
    }

    /// Visits every resident, successfully built entry — in-flight builds
    /// and error slots are skipped. One shard lock is held at a time, so
    /// `f` must not re-enter the cache. Used to spill learned state to the
    /// persistent store at shutdown; iteration order is unspecified.
    pub fn for_each_built(&self, mut f: impl FnMut(u128, &V)) {
        for shard in self.shards.iter() {
            let map = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (&key, slot) in map.iter() {
                if let Some(Ok(v)) = slot.value.get() {
                    f(key, v);
                }
            }
        }
    }

    /// Entries currently resident (built or building).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeError;
    use std::sync::atomic::AtomicUsize;

    fn fp(i: u64) -> PatternFingerprint {
        // Distinct structures: a 1×k matrix with k = i + 1 columns.
        PatternFingerprint::of_structure(1, i as usize + 1, &[0, 0], &[])
    }

    #[test]
    fn hit_after_miss_shares_the_value() {
        let cache: PlanCache<u64> = PlanCache::new(4, 16);
        let a = cache.get_or_build(fp(1), || Ok(41)).unwrap();
        let b = cache.get_or_build(fp(1), || Ok(99)).unwrap();
        assert_eq!(*a.get(), 41);
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same slot");
        assert_eq!(b.hits(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.builds), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_discards_the_coldest() {
        let cache: PlanCache<u64> = PlanCache::new(1, 2);
        cache.get_or_build(fp(0), || Ok(0)).unwrap();
        cache.get_or_build(fp(1), || Ok(1)).unwrap();
        cache.get_or_build(fp(0), || Ok(0)).unwrap(); // refresh 0
        cache.get_or_build(fp(2), || Ok(2)).unwrap(); // evicts 1
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // 0 is still cached, 1 must rebuild.
        cache.get_or_build(fp(0), || unreachable!()).unwrap();
        let rebuilt = AtomicUsize::new(0);
        cache
            .get_or_build(fp(1), || {
                rebuilt.fetch_add(1, Ordering::Relaxed);
                Ok(1)
            })
            .unwrap();
        assert_eq!(rebuilt.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn contains_sees_only_built_entries() {
        let cache: PlanCache<u64> = PlanCache::new(2, 4);
        assert!(!cache.contains(fp(3)));
        cache.get_or_build(fp(3), || Ok(1)).unwrap();
        assert!(cache.contains(fp(3)));
        assert!(!cache.contains(fp(4)));
    }

    #[test]
    fn failed_build_is_reported_and_retriable() {
        let cache: PlanCache<u64> = PlanCache::new(2, 8);
        let err = RuntimeError::Sparse(rtpl_sparse::SparseError::MissingDiagonal { row: 3 });
        let got = cache.get_or_build(fp(7), || Err(err.clone()));
        assert_eq!(got.unwrap_err(), err);
        assert!(cache.is_empty(), "failed slot must not stay resident");
        // Retry succeeds and builds again.
        let slot = cache.get_or_build(fp(7), || Ok(5)).unwrap();
        assert_eq!(*slot.get(), 5);
        assert_eq!(cache.stats().builds, 2);
    }

    #[test]
    fn concurrent_misses_build_exactly_once() {
        let cache: Arc<PlanCache<u64>> = Arc::new(PlanCache::new(4, 64));
        let built = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                let built = Arc::clone(&built);
                scope.spawn(move || {
                    for rep in 0..200 {
                        let key = fp((t + rep) % 16);
                        let slot = cache
                            .get_or_build(key, || {
                                built.fetch_add(1, Ordering::Relaxed);
                                // A slow build maximizes the window where
                                // other threads can pile onto the slot.
                                std::thread::sleep(std::time::Duration::from_micros(200));
                                Ok(key.lo())
                            })
                            .unwrap();
                        assert_eq!(*slot.get(), key.lo());
                    }
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 16, "one build per key");
        assert_eq!(cache.stats().builds, 16);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 200);
    }
}
