//! The runtime service: cached, policy-adaptive front doors.

use crate::cache::{CacheStats, PlanCache};
use crate::pools::{LeasePool, PoolSet};
use crate::selector::{arm_index, AdaptiveState, PolicySelector, ARMS};
use crate::Result;
use rtpl_executor::compiled::{CompiledPlan, RunScratch};
use rtpl_executor::{CancelToken, ExecReport, LoopBody, LoopScratch, PlannedLoop, WorkerPool};
use rtpl_inspector::{DepGraph, Partition, Schedule, Wavefronts};
use rtpl_krylov::{
    CompiledSolveScratch, CompiledTriSolve, ExecutorKind, Precondition, Sorting,
    TriangularSolvePlan,
};
use rtpl_sim::{calibrate, CostModel};
use rtpl_sparse::ilu::IluFactors;
use rtpl_sparse::wire::{WireError, WireReader, WireWriter};
use rtpl_sparse::{Csr, PatternFingerprint};
use rtpl_store::PlanStore;
use rtpl_verify::VerifyError;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a [`Runtime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Processors per plan (and per leased worker pool).
    pub nprocs: usize,
    /// Shards of each plan cache.
    pub shards: usize,
    /// Total plans each cache retains before LRU eviction.
    pub capacity: usize,
    /// Inspector sorting discipline for new plans.
    pub sorting: Sorting,
    /// Measure per-operation costs on this host at startup (the §5.1.2
    /// calibration). When `false` the abstract Multimax model is used —
    /// deterministic, instant, and good enough for tests.
    pub calibrate: bool,
    /// Force one executor discipline instead of adapting (useful for
    /// experiments and reproducibility runs).
    pub policy: Option<ExecutorKind>,
    /// Worker threads a [`Runtime::submit_batch`] call may use to run
    /// fingerprint groups concurrently (`0` = one per available hardware
    /// thread). Each worker leases its own pool and scratches, so groups
    /// proceed fully in parallel; on a single-core host the batch still
    /// wins by amortizing leases, selector traffic, and value gathers.
    pub batch_workers: usize,
    /// Segment file of the persistent plan store (`None` = no disk tier).
    /// Solve-cache misses consult the store before paying for a cold
    /// inspection, cold builds spill their artifact write-behind, and
    /// [`Runtime::warm_from_store`] can pre-populate the memory cache from
    /// a previous process's plans. A file that fails to open (or parse)
    /// never fails the runtime: the error is counted in
    /// [`RuntimeStats::store_load_errors`] and the runtime runs storeless.
    pub store_path: Option<PathBuf>,
    /// Consecutive failures (failed builds, panicking bodies) a single
    /// pattern may accumulate through the [`Runtime::submit`] /
    /// [`Runtime::submit_batch`] front door before its circuit breaker
    /// opens and requests for it are rejected cheaply with
    /// [`crate::RuntimeError::CircuitOpen`]. After
    /// [`RuntimeConfig::breaker_cooldown`] one probe request is admitted:
    /// success closes the breaker, failure re-opens it. `0` disables
    /// circuit breaking. Deadline expiry and cancellation are the
    /// *client's* doing and never count against a pattern.
    pub breaker_threshold: u32,
    /// How long an open circuit rejects before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Wavefront-coalescing aggressiveness. The inspector merges
    /// consecutive phases whose combined per-processor work stays at or
    /// below `coalesce_factor × Tsynch / Tp` weighted operations — the
    /// break-even point where a phase's work no longer covers its barrier
    /// (or ready-flag round), scaled by this factor. `1.0` merges exactly
    /// the phases the cost model says are synchronization-bound; `0.0`
    /// disables coalescing (one phase per wavefront, the paper's layout).
    /// Dependences inside a merged phase are honored by each processor's
    /// baked execution order, so results stay bit-exact.
    pub coalesce_factor: f64,
    /// Run the [`rtpl_verify`] plan verifier over every freshly built
    /// plan (schedules, barrier plans, compiled layouts) before caching
    /// it. A failed proof aborts the build with a typed
    /// `InvalidStructure` error naming the violated edge and counts in
    /// [`RuntimeStats::verify_failures`]. Defaults to **on in debug
    /// builds, off in release** — verification is a build-time cost only
    /// (never on the warm solve path), but cold inspection is already the
    /// expensive path and release deployments usually prefer the
    /// throughput. Plans decoded from the persistent store are untrusted
    /// disk input and are **always** verified, regardless of this flag.
    pub verify_plans: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            nprocs: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2)
                .clamp(1, 8),
            shards: 8,
            capacity: 128,
            sorting: Sorting::Global,
            calibrate: true,
            policy: None,
            batch_workers: 0,
            store_path: None,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(100),
            coalesce_factor: 1.0,
            verify_plans: cfg!(debug_assertions),
        }
    }
}

/// Counter snapshot of a [`Runtime`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeStats {
    /// Triangular-solve plan cache counters.
    pub solves: CacheStats,
    /// Generic planned-loop cache counters.
    pub loops: CacheStats,
    /// Compiled linear-loop cache counters ([`Runtime::run_linear`]).
    pub linears: CacheStats,
    /// Batches submitted through [`Runtime::submit_batch`].
    pub batches: u64,
    /// Jobs carried by those batches. (A batch performs one cache lookup
    /// per fingerprint *group*, so `solves.hits` counts groups, not jobs,
    /// on the batched path.)
    pub batch_jobs: u64,
    /// Worker pools ever spawned (the concurrency high-water mark).
    pub pools_created: u64,
    /// Runs executed per policy, indexed as [`ARMS`].
    pub policy_runs: [u64; 5],
    /// Executor scratches ever built across all cached entries — grows
    /// only when requests for one pattern overlap (each entry reuses a
    /// free-listed scratch otherwise).
    pub scratches_created: u64,
    /// Highest number of simultaneously in-flight requests observed on
    /// any **single** cached pattern. Under the old per-entry mutex this
    /// could never exceed 1; ≥ 2 proves same-pattern requests run
    /// concurrently.
    pub peak_same_pattern: u64,
    /// Solve-cache misses served by decoding a persisted plan artifact
    /// instead of a cold inspection (includes plans pre-loaded by
    /// [`Runtime::warm_from_store`]).
    pub store_hits: u64,
    /// Solve-cache misses that consulted the store and found nothing —
    /// these paid the full cold inspection.
    pub store_misses: u64,
    /// Plan artifacts accepted by the store's write-behind queue (cold
    /// builds plus [`Runtime::persist_learned`] snapshots; a queue-full
    /// drop is *not* counted here — see the store's own `dropped_writes`).
    pub store_writes: u64,
    /// Store records that could not be used: open/scan repairs, corrupt or
    /// truncated payloads, wire-format mismatches, artifacts built for a
    /// different processor count. Every one fell back to cold inspection —
    /// this counter is the only trace the failure leaves.
    pub store_load_errors: u64,
    /// Jobs whose loop body panicked and were answered with a typed
    /// [`crate::RuntimeError::BodyPanicked`] instead of unwinding the
    /// service.
    pub body_panics: u64,
    /// Jobs rejected or interrupted because their deadline passed (or
    /// their cancel token fired).
    pub deadline_expired: u64,
    /// Requests rejected by an open per-pattern circuit breaker.
    pub circuit_open: u64,
    /// Leased worker pools found dead (a worker thread gone) and replaced
    /// with fresh ones.
    pub pool_rebuilds: u64,
    /// Plans proven safe by the [`rtpl_verify`] plan verifier: every
    /// store-decoded artifact (always checked) plus, when
    /// [`RuntimeConfig::verify_plans`] is on, every cold build.
    pub verified_plans: u64,
    /// Plans the verifier rejected. A rejected store artifact is also a
    /// [`RuntimeStats::store_load_errors`] entry and falls back to cold
    /// inspection; a rejected cold build fails the request with a typed
    /// `InvalidStructure` error naming the violated invariant.
    pub verify_failures: u64,
    /// Barriered phases (forward + backward) the wavefront computation
    /// produced, summed over every solve plan this runtime built cold or
    /// decoded from the store. With coalescing off this equals
    /// [`RuntimeStats::coalesce_phases_after`].
    pub coalesce_phases_before: u64,
    /// Barriered phases remaining after wavefront coalescing, summed the
    /// same way. `before − after` synchronization points were converted
    /// into baked intra-phase execution order.
    pub coalesce_phases_after: u64,
    /// Compiled positions whose operand run is shared with the preceding
    /// position (the supernode layout's deduplicated rows), summed over
    /// both sweeps of every solve plan built or decoded.
    pub supernode_positions: u64,
}

impl RuntimeStats {
    /// Runs executed under `kind`.
    pub fn runs_for(&self, kind: ExecutorKind) -> u64 {
        self.policy_runs[arm_index(kind)]
    }

    /// The most-run policy (the service's steady-state choice).
    pub fn dominant_policy(&self) -> ExecutorKind {
        ARMS[(0..ARMS.len())
            .max_by_key(|&k| self.policy_runs[k])
            .expect("invariant: ARMS is non-empty")]
    }

    /// Renders the counters as plaintext `name value` lines — the format
    /// `rtpl-server`'s metrics endpoint serves (one metric per line,
    /// `snake_case` names prefixed `rtpl_`, stable ordering).
    pub fn render_plaintext(&self) -> String {
        let mut out = String::new();
        let mut line = |name: &str, v: u64| {
            out.push_str("rtpl_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        };
        for (cache, stats) in [
            ("solve", &self.solves),
            ("loop", &self.loops),
            ("linear", &self.linears),
        ] {
            line(&format!("{cache}_cache_hits"), stats.hits);
            line(&format!("{cache}_cache_misses"), stats.misses);
            line(&format!("{cache}_cache_builds"), stats.builds);
            line(&format!("{cache}_cache_evictions"), stats.evictions);
        }
        line("batches", self.batches);
        line("batch_jobs", self.batch_jobs);
        line("pools_created", self.pools_created);
        line("scratches_created", self.scratches_created);
        line("peak_same_pattern", self.peak_same_pattern);
        line("store_hits", self.store_hits);
        line("store_misses", self.store_misses);
        line("store_writes", self.store_writes);
        line("store_load_errors", self.store_load_errors);
        line("body_panics", self.body_panics);
        line("deadline_expired", self.deadline_expired);
        line("circuit_open", self.circuit_open);
        line("pool_rebuilds", self.pool_rebuilds);
        line("verified_plans", self.verified_plans);
        line("verify_failures", self.verify_failures);
        line("coalesce_phases_before", self.coalesce_phases_before);
        line("coalesce_phases_after", self.coalesce_phases_after);
        line("supernode_positions", self.supernode_positions);
        for (k, kind) in ARMS.iter().enumerate() {
            line(
                &format!("policy_runs_{}", format!("{kind:?}").to_lowercase()),
                self.policy_runs[k],
            );
        }
        out
    }
}

/// Outcome of one [`Runtime::solve`] request.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Discipline the adaptive selector (or the forced config) ran.
    pub policy: ExecutorKind,
    /// `true` when the plan came from the cache (no inspection this call).
    pub cached: bool,
    /// The structure key the request was served under.
    pub pattern: PatternFingerprint,
    /// Requests in flight on this pattern when this one started,
    /// including itself (≥ 2 ⇔ same-pattern requests overlapped).
    pub concurrent: u64,
    /// Forward and backward sweep reports.
    pub reports: (ExecReport, ExecReport),
}

/// Outcome of one [`Runtime::run`] request.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Discipline the adaptive selector (or the forced config) ran.
    pub policy: ExecutorKind,
    /// `true` when the plan came from the cache (no inspection this call).
    pub cached: bool,
    /// The structure key the request was served under.
    pub pattern: PatternFingerprint,
    /// Requests in flight on this pattern when this one started,
    /// including itself (≥ 2 ⇔ same-pattern requests overlapped).
    pub concurrent: u64,
    /// Execution report.
    pub report: ExecReport,
}

/// Cached state for one factor structure: the immutable compiled plan
/// (shared by every in-flight request) plus a lease pool of per-run
/// scratches. N threads hitting the same fingerprint run N solves in
/// parallel — the expensive part (schedules, compiled layouts, barrier
/// plans) exists once, the cheap part (epoch-stamped buffers, gathered
/// values) is replicated on demand and recycled. Only the adaptive
/// explore/exploit bookkeeping sits behind a (briefly held) mutex.
pub struct SolveEntry {
    pub(crate) compiled: CompiledTriSolve,
    pub(crate) adaptive: Mutex<AdaptiveState>,
    pub(crate) scratches: LeasePool<CompiledSolveScratch>,
}

/// Cached state for one generic loop structure, split exactly like
/// [`SolveEntry`]: one shared [`PlannedLoop`], leased [`LoopScratch`]es.
pub struct LoopEntry {
    pub(crate) plan: PlannedLoop,
    pub(crate) adaptive: Mutex<AdaptiveState>,
    pub(crate) scratches: LeasePool<LoopScratch>,
}

/// Cached state for one compiled linear-recurrence loop structure
/// ([`Runtime::run_linear`] / [`crate::JobKind::LinearLoop`]): the
/// schedule-order [`CompiledPlan`] layout plus leased [`RunScratch`]es.
pub struct LinearEntry {
    pub(crate) compiled: CompiledPlan,
    pub(crate) adaptive: Mutex<AdaptiveState>,
    pub(crate) scratches: LeasePool<RunScratch>,
}

/// The multi-client solver service: concurrent plan caches in front of the
/// inspector, an adaptive policy selector in front of the executors. See
/// the crate docs for the architecture.
pub struct Runtime {
    pub(crate) cfg: RuntimeConfig,
    pub(crate) selector: PolicySelector,
    pub(crate) pools: PoolSet,
    pub(crate) solves: PlanCache<SolveEntry>,
    pub(crate) loops: PlanCache<LoopEntry>,
    pub(crate) linears: PlanCache<LinearEntry>,
    pub(crate) policy_runs: [AtomicU64; 5],
    pub(crate) scratches_created: AtomicU64,
    pub(crate) peak_same_pattern: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batch_jobs: AtomicU64,
    /// Disk tier of the solve-plan cache (see [`RuntimeConfig::store_path`]).
    pub(crate) store: Option<PlanStore>,
    pub(crate) store_hits: AtomicU64,
    pub(crate) store_misses: AtomicU64,
    pub(crate) store_writes: AtomicU64,
    pub(crate) store_load_errors: AtomicU64,
    pub(crate) body_panics: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) circuit_open: AtomicU64,
    pub(crate) verified_plans: AtomicU64,
    pub(crate) verify_failures: AtomicU64,
    pub(crate) coalesce_phases_before: AtomicU64,
    pub(crate) coalesce_phases_after: AtomicU64,
    pub(crate) supernode_positions: AtomicU64,
    /// Per-pattern consecutive-failure accounting for the circuit breaker
    /// (bounded; see [`BREAKER_CAPACITY`]).
    pub(crate) breaker: Mutex<HashMap<u128, BreakerState>>,
}

/// Most patterns a [`Runtime`] tracks breaker state for. Only *failing*
/// patterns occupy a slot (success evicts), so hitting the bound means
/// this many patterns are failing simultaneously; further ones simply go
/// untracked rather than growing the map without limit.
const BREAKER_CAPACITY: usize = 1024;

/// Consecutive-failure state of one pattern's circuit.
#[derive(Debug, Default)]
pub(crate) struct BreakerState {
    consecutive: u32,
    open_until: Option<Instant>,
    probing: bool,
}

impl Runtime {
    /// Starts a runtime. With `cfg.calibrate` set (the default) this
    /// measures `Tp`/`Tinc`/`Tcheck` on the host **once** — every pattern
    /// admitted later reuses the same calibrated [`CostModel`].
    pub fn new(cfg: RuntimeConfig) -> Self {
        let cost = if cfg.calibrate {
            calibrate::calibrate_host(calibrate::default_tsynch_ns(cfg.nprocs))
        } else {
            CostModel::multimax()
        };
        Self::with_cost_model(cfg, cost)
    }

    /// Starts a runtime with an explicit cost model (skips calibration).
    pub fn with_cost_model(cfg: RuntimeConfig, cost: CostModel) -> Self {
        assert!(cfg.nprocs >= 1);
        // Host honesty rides with calibration: when the runtime measures
        // the host it also detects its core count, and the selector retires
        // parallel arms whose processor count the hardware cannot actually
        // run simultaneously (spin-wait executors fall off a cliff there).
        // Abstract-model runtimes (`calibrate: false`) stay pure model.
        let host_procs = if cfg.calibrate {
            std::thread::available_parallelism().ok().map(|p| p.get())
        } else {
            None
        };
        // The persistent tier is strictly optional: an unopenable store
        // file (bad magic, future version, filesystem trouble) leaves its
        // one trace in `store_load_errors` and the runtime runs storeless.
        let mut open_errors = 0;
        let store = cfg
            .store_path
            .as_ref()
            .and_then(|path| PlanStore::open(path).inspect_err(|_| open_errors = 1).ok());
        Runtime {
            selector: PolicySelector::with_host_procs(cost, host_procs),
            pools: PoolSet::new(cfg.nprocs),
            solves: PlanCache::new(cfg.shards, cfg.capacity),
            loops: PlanCache::new(cfg.shards, cfg.capacity),
            linears: PlanCache::new(cfg.shards, cfg.capacity),
            policy_runs: [const { AtomicU64::new(0) }; 5],
            scratches_created: AtomicU64::new(0),
            peak_same_pattern: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_jobs: AtomicU64::new(0),
            store,
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_writes: AtomicU64::new(0),
            store_load_errors: AtomicU64::new(open_errors),
            body_panics: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            circuit_open: AtomicU64::new(0),
            verified_plans: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
            coalesce_phases_before: AtomicU64::new(0),
            coalesce_phases_after: AtomicU64::new(0),
            supernode_positions: AtomicU64::new(0),
            breaker: Mutex::new(HashMap::new()),
            cfg,
        }
    }

    /// Folds one finished request's error (if any) into the failure
    /// counters. Called where per-request results are finalized (the
    /// `submit`/`submit_batch` front door), never in the inner doors, so
    /// each failure is counted exactly once.
    pub(crate) fn count_error(&self, e: &crate::RuntimeError) {
        match e {
            crate::RuntimeError::BodyPanicked { .. } => {
                self.body_panics.fetch_add(1, Ordering::Relaxed);
            }
            crate::RuntimeError::DeadlineExceeded | crate::RuntimeError::Cancelled => {
                self.deadline_expired.fetch_add(1, Ordering::Relaxed);
            }
            // Counted at the rejection site (`breaker_admit`).
            crate::RuntimeError::CircuitOpen => {}
            _ => {}
        }
    }

    /// Admits or rejects a request for `key` against its circuit. An open
    /// circuit whose cooldown has elapsed admits exactly one probe; its
    /// outcome (reported through [`Runtime::breaker_note`]) decides
    /// whether the circuit closes or re-opens.
    pub(crate) fn breaker_admit(&self, key: PatternFingerprint) -> Result<()> {
        if self.cfg.breaker_threshold == 0 {
            return Ok(());
        }
        let mut map = self.breaker.lock().unwrap_or_else(|e| e.into_inner());
        let Some(st) = map.get_mut(&key.as_u128()) else {
            return Ok(());
        };
        if let Some(until) = st.open_until {
            if st.probing || Instant::now() < until {
                self.circuit_open.fetch_add(1, Ordering::Relaxed);
                return Err(crate::RuntimeError::CircuitOpen);
            }
            st.probing = true;
        }
        Ok(())
    }

    /// Folds one admitted request's outcome back into `key`'s circuit:
    /// success closes it (and frees its slot), a service-side failure
    /// counts toward opening it, a client-side outcome (deadline,
    /// cancellation) is neutral — it only ends an in-flight probe.
    pub(crate) fn breaker_note<T>(&self, key: PatternFingerprint, r: &Result<T>) {
        if self.cfg.breaker_threshold == 0 {
            return;
        }
        let failed = match r {
            Ok(_) => false,
            Err(
                crate::RuntimeError::DeadlineExceeded
                | crate::RuntimeError::Cancelled
                | crate::RuntimeError::CircuitOpen,
            ) => {
                let mut map = self.breaker.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(st) = map.get_mut(&key.as_u128()) {
                    st.probing = false;
                }
                return;
            }
            Err(_) => true,
        };
        let mut map = self.breaker.lock().unwrap_or_else(|e| e.into_inner());
        if !failed {
            map.remove(&key.as_u128());
            return;
        }
        let len = map.len();
        let st = match map.entry(key.as_u128()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                if len >= BREAKER_CAPACITY {
                    return;
                }
                v.insert(BreakerState::default())
            }
        };
        st.consecutive += 1;
        st.probing = false;
        if st.consecutive >= self.cfg.breaker_threshold {
            st.open_until = Some(Instant::now() + self.cfg.breaker_cooldown);
        }
    }

    /// Folds one scratch-lease observation into the runtime counters.
    pub(crate) fn note_lease(&self, info: crate::pools::LeaseInfo) {
        if info.created {
            self.scratches_created.fetch_add(1, Ordering::Relaxed);
        }
        self.peak_same_pattern
            .fetch_max(info.active, Ordering::Relaxed);
    }

    /// The cache key of a solve request: the combined (L, U) structure.
    /// Public so out-of-process callers (the `rtpl-server` wire protocol's
    /// `WarmCheck`/`SolveByFingerprint` requests) can compute the exact key
    /// the runtime will use without shipping the factors.
    pub fn solve_key(factors: &IluFactors) -> PatternFingerprint {
        PatternFingerprint::combine(&[
            factors.l.pattern_fingerprint(),
            factors.u.pattern_fingerprint(),
        ])
    }

    /// The forced policy, or one adaptive decision under the entry lock.
    pub(crate) fn choose_policy(&self, adaptive: &Mutex<AdaptiveState>) -> ExecutorKind {
        self.cfg
            .policy
            .unwrap_or_else(|| adaptive.lock().unwrap_or_else(|e| e.into_inner()).choose())
    }

    /// Folds a whole group's runs back into the selector and the policy
    /// counters: one averaged observation, one counter bump of `runs`.
    pub(crate) fn observe_group(
        &self,
        adaptive: &Mutex<AdaptiveState>,
        kind: ExecutorKind,
        wall_ns_sum: f64,
        runs: u64,
    ) {
        if runs == 0 {
            return;
        }
        adaptive
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(kind, wall_ns_sum / runs as f64);
        self.policy_runs[arm_index(kind)].fetch_add(runs, Ordering::Relaxed);
    }

    /// Acquires one solve pattern's entry: the memory-cache miss path of
    /// [`Runtime::solve`] and of solve groups in a batch. With a store
    /// attached, a persisted artifact is decoded instead of re-running the
    /// inspector; otherwise (or when the record is absent, corrupt, or
    /// built for a different processor count) the pattern pays the full
    /// cold inspection and the fresh plan is spilled write-behind.
    pub(crate) fn build_solve_entry(&self, factors: &IluFactors) -> Result<SolveEntry> {
        let key = Self::solve_key(factors).as_u128();
        if let Some(entry) = self.load_solve_entry(key) {
            return Ok(entry);
        }
        let entry = self.inspect_solve_entry(factors)?;
        self.spill_solve_entry(key, &entry);
        Ok(entry)
    }

    /// The wavefront-coalescing grain in weighted operations: the
    /// break-even work a phase must carry to pay for its synchronization
    /// point under the runtime's cost model (`Tsynch / Tp`), scaled by
    /// [`RuntimeConfig::coalesce_factor`]. `None` when the factor is zero
    /// (coalescing disabled).
    pub fn coalesce_grain(&self) -> Option<f64> {
        let factor = self.cfg.coalesce_factor;
        // NaN and non-positive factors both disable coalescing.
        if !factor.is_finite() || factor <= 0.0 {
            return None;
        }
        let cost = self.selector.cost_model();
        Some(factor * cost.tsynch / cost.tp)
    }

    /// Folds one freshly built or store-decoded solve plan's coalescing
    /// and supernode-layout numbers into the runtime counters. Plans that
    /// were never coalesced count their phases on both sides (before ==
    /// after), so the two counters always describe the same plan set.
    fn note_solve_plan(&self, compiled: &CompiledTriSolve) {
        let (phases_l, phases_u) = compiled.plan().num_phases();
        let (sl, su) = compiled.plan().coalesce_stats();
        let before_l = sl.map_or(phases_l, |s| s.phases_before);
        let before_u = su.map_or(phases_u, |s| s.phases_before);
        self.coalesce_phases_before
            .fetch_add((before_l + before_u) as u64, Ordering::Relaxed);
        self.coalesce_phases_after
            .fetch_add((phases_l + phases_u) as u64, Ordering::Relaxed);
        let supernodes = compiled.forward_plan().supernode_positions()
            + compiled.backward_plan().supernode_positions();
        self.supernode_positions
            .fetch_add(supernodes as u64, Ordering::Relaxed);
    }

    /// The genuinely cold path: inspects, predicts, and compiles.
    fn inspect_solve_entry(&self, factors: &IluFactors) -> Result<SolveEntry> {
        let plan = TriangularSolvePlan::new_with_grain(
            factors,
            self.cfg.nprocs,
            self.cfg.policy.unwrap_or(ExecutorKind::SelfExecuting),
            self.cfg.sorting,
            self.coalesce_grain(),
        )?;
        let pl = self.selector.predict(plan.plan_l());
        let pu = self.selector.predict(plan.plan_u());
        let mut prior = [0.0; 5];
        for k in 0..ARMS.len() {
            prior[k] = pl[k] + pu[k];
        }
        let compiled = plan.compile()?;
        if self.cfg.verify_plans {
            self.verify_or_reject(rtpl_verify::verify_tri_solve(&compiled))?;
        }
        self.note_solve_plan(&compiled);
        Ok(SolveEntry {
            compiled,
            adaptive: Mutex::new(AdaptiveState::new(prior)),
            scratches: LeasePool::new(),
        })
    }

    /// Folds one plan-verification verdict into the counters, mapping a
    /// rejection onto a typed structural error. Every call site sits on a
    /// build or decode path — never on the warm run path.
    fn verify_or_reject(&self, r: std::result::Result<(), VerifyError>) -> Result<()> {
        match r {
            Ok(()) => {
                self.verified_plans.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.verify_failures.fetch_add(1, Ordering::Relaxed);
                Err(crate::RuntimeError::Sparse(
                    rtpl_sparse::SparseError::InvalidStructure(format!("plan verification: {e}")),
                ))
            }
        }
    }

    /// Consults the persistent store for `key`. `None` means "pay the cold
    /// path" — whether because no store is attached, the key is absent
    /// (`store_misses`), or the record exists but cannot be used
    /// (`store_load_errors`: corruption, truncation, format drift, or an
    /// artifact compiled for a different `nprocs`). Never fails the
    /// request.
    fn load_solve_entry(&self, key: u128) -> Option<SolveEntry> {
        let store = self.store.as_ref()?;
        let payload = match store.get(key) {
            Ok(Some(p)) => p,
            Ok(None) => {
                self.store_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.store_load_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match self.decode_solve_payload(&payload) {
            Ok(entry) => {
                store.touch(key);
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Err(_) => {
                self.store_load_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Serializes one solve entry for the store: the structure-only plan
    /// artifact plus the adaptive selector's state — the measured snapshot,
    /// and the policy prior together with the exact context it was computed
    /// under (cost model and host core clamp). A restarted runtime whose
    /// context matches bitwise reuses the prior instead of re-running the
    /// prediction simulations; any drift (recalibration, different core
    /// count) makes it recompute.
    fn encode_solve_payload(&self, entry: &SolveEntry) -> Vec<u8> {
        let adaptive = entry.adaptive.lock().unwrap_or_else(|e| e.into_inner());
        let (measured, count) = adaptive.snapshot();
        let prior = adaptive.prior();
        drop(adaptive);
        let cost = self.selector.cost_model();
        let mut w = WireWriter::new();
        w.put_u8s(&entry.compiled.encode_artifact());
        // The coalescing grain is part of the prior's context: a restarted
        // runtime with a different grain would schedule (and price) the
        // pattern differently, so its stored prior must not resume.
        w.put_f64s(&[
            cost.tp,
            cost.tsynch,
            cost.tinc,
            cost.tcheck,
            self.coalesce_grain().unwrap_or(0.0),
        ]);
        w.put_u64(self.selector.host_procs().map_or(0, |p| p as u64));
        w.put_f64s(&prior);
        w.put_f64s(&measured);
        w.put_u64s(&count);
        w.into_bytes()
    }

    /// Decodes a stored payload into a servable entry. The artifact must
    /// have been compiled for this runtime's processor count — worker
    /// pools are leased at `cfg.nprocs`, and a compiled layout's phase
    /// walk is per-processor — otherwise the record is rejected (the
    /// caller counts it as a load error and goes cold). The policy prior
    /// encodes the writer's cost model and core count: when they match
    /// this runtime's bitwise, the persisted prior is resumed directly
    /// (the prediction simulations are deterministic in that context, so
    /// re-running them would reproduce it); on any mismatch — or a prior
    /// with no feasible arm left — it is recomputed fresh from the
    /// decoded plans, and the persisted measurements resume on top.
    fn decode_solve_payload(&self, payload: &[u8]) -> std::result::Result<SolveEntry, WireError> {
        let mut r = WireReader::new(payload);
        let artifact = r.u8s_ref()?;
        let stored_cost: [f64; 5] = r.f64s()?.try_into().map_err(|_| {
            WireError::Invalid("prior context needs 4 cost parameters and a grain".into())
        })?;
        let stored_host = r.u64()?;
        let stored_prior: [f64; 5] = r
            .f64s()?
            .try_into()
            .map_err(|_| WireError::Invalid("prior needs 5 arms".into()))?;
        let measured: [f64; 5] = r
            .f64s()?
            .try_into()
            .map_err(|_| WireError::Invalid("adaptive snapshot needs 5 means".into()))?;
        let count: [u64; 5] = r
            .u64s()?
            .try_into()
            .map_err(|_| WireError::Invalid("adaptive snapshot needs 5 counts".into()))?;
        r.finish()?;
        let compiled = CompiledTriSolve::decode_artifact(artifact)?;
        if compiled.forward_plan().nprocs() != self.cfg.nprocs {
            return Err(WireError::Invalid(format!(
                "artifact compiled for {} procs, runtime configured for {}",
                compiled.forward_plan().nprocs(),
                self.cfg.nprocs
            )));
        }
        // Disk input is untrusted: prove the decoded plan safe before it
        // can reach the cache, regardless of `cfg.verify_plans`. A mutant
        // artifact costs one counted load error and a cold fallback.
        if let Err(e) = rtpl_verify::verify_tri_solve(&compiled) {
            self.verify_failures.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::Invalid(format!("plan verification: {e}")));
        }
        self.verified_plans.fetch_add(1, Ordering::Relaxed);
        let cost = self.selector.cost_model();
        let same_context = stored_cost[0].to_bits() == cost.tp.to_bits()
            && stored_cost[1].to_bits() == cost.tsynch.to_bits()
            && stored_cost[2].to_bits() == cost.tinc.to_bits()
            && stored_cost[3].to_bits() == cost.tcheck.to_bits()
            && stored_cost[4].to_bits() == self.coalesce_grain().unwrap_or(0.0).to_bits()
            && stored_host == self.selector.host_procs().map_or(0, |p| p as u64);
        let prior = if same_context && stored_prior.iter().any(|p| p.is_finite()) {
            stored_prior
        } else {
            let pl = self.selector.predict(compiled.plan().plan_l());
            let pu = self.selector.predict(compiled.plan().plan_u());
            let mut prior = [0.0; 5];
            for k in 0..ARMS.len() {
                prior[k] = pl[k] + pu[k];
            }
            prior
        };
        self.note_solve_plan(&compiled);
        Ok(SolveEntry {
            compiled,
            adaptive: Mutex::new(AdaptiveState::resume(prior, measured, count)),
            scratches: LeasePool::new(),
        })
    }

    /// Queues one entry's payload on the store's write-behind channel.
    fn spill_solve_entry(&self, key: u128, entry: &SolveEntry) {
        if let Some(store) = self.store.as_ref() {
            if store.put(key, self.encode_solve_payload(entry)) {
                self.store_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Schedules one generic loop structure (the cold path of
    /// [`Runtime::run`], [`Runtime::run_spec`], and loop groups).
    pub(crate) fn build_loop_entry(&self, g: DepGraph) -> Result<LoopEntry> {
        let wf = Wavefronts::compute(&g)?;
        let mut schedule = self.build_schedule(&wf, g.n())?;
        if let Some(grain) = self.coalesce_grain() {
            schedule = schedule.coalesce(&g, grain)?.0;
        }
        let plan = PlannedLoop::new(g, schedule)?;
        if self.cfg.verify_plans {
            self.verify_or_reject(rtpl_verify::verify_plan(
                plan.graph(),
                plan.schedule(),
                plan.barrier_plan(),
            ))?;
        }
        let prior = self.selector.predict(&plan);
        Ok(LoopEntry {
            plan,
            adaptive: Mutex::new(AdaptiveState::new(prior)),
            scratches: LeasePool::new(),
        })
    }

    /// Schedules **and compiles** one linear-recurrence loop structure
    /// into its schedule-order layout (the cold path of
    /// [`Runtime::run_linear`] and linear groups).
    pub(crate) fn build_linear_entry(&self, spec: &crate::LoopSpec) -> Result<LinearEntry> {
        let g = spec.graph().clone();
        let wf = Wavefronts::compute(&g)?;
        let mut schedule = self.build_schedule(&wf, g.n())?;
        if let Some(grain) = self.coalesce_grain() {
            schedule = schedule.coalesce(&g, grain)?.0;
        }
        let plan = PlannedLoop::new(g, schedule)?;
        let prior = self.selector.predict(&plan);
        let cspec = rtpl_executor::compiled::CompiledSpec::linear_from_graph(plan.graph());
        let compiled = CompiledPlan::compile(&plan, &cspec).map_err(map_compiled)?;
        if self.cfg.verify_plans {
            self.verify_or_reject(rtpl_verify::verify_linear(&plan, &compiled))?;
        }
        Ok(LinearEntry {
            compiled,
            adaptive: Mutex::new(AdaptiveState::new(prior)),
            scratches: LeasePool::new(),
        })
    }

    /// The schedule the configured sorting discipline prescribes.
    fn build_schedule(&self, wf: &Wavefronts, n: usize) -> Result<Schedule> {
        Ok(match self.cfg.sorting {
            Sorting::Global => Schedule::global(wf, self.cfg.nprocs)?,
            Sorting::LocalStriped => Schedule::local(wf, &Partition::striped(n, self.cfg.nprocs)?)?,
            Sorting::LocalContiguous => {
                Schedule::local(wf, &Partition::contiguous(n, self.cfg.nprocs)?)?
            }
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The cost model driving policy priors (calibrated or abstract).
    pub fn cost_model(&self) -> &CostModel {
        self.selector.cost_model()
    }

    /// Solves `L U x = b` for any factors, through the plan cache.
    ///
    /// The cache key is the *structure* of `(L, U)`; the numeric values of
    /// `factors` are applied per call, so refactorized numbers on an
    /// unchanged pattern still hit. The first request for a pattern
    /// inspects both sweeps (dependence graphs, wavefronts, schedules,
    /// minimal barrier sets) and predicts every policy's cost; later
    /// requests run immediately under the current best policy.
    pub fn solve(&self, factors: &IluFactors, b: &[f64], x: &mut [f64]) -> Result<SolveOutcome> {
        self.solve_with_cancel(factors, b, x, None)
    }

    /// [`Runtime::solve`] with failure containment: a fired `cancel`
    /// token (explicit or deadline) or a mid-sweep worker panic comes
    /// back as a typed error for *this* request; the cached plan, the
    /// leased scratch, and the worker pool all stay in service.
    pub(crate) fn solve_with_cancel(
        &self,
        factors: &IluFactors,
        b: &[f64],
        x: &mut [f64],
        cancel: Option<&CancelToken>,
    ) -> Result<SolveOutcome> {
        let key = Self::solve_key(factors);
        let mut built = false;
        let slot = self.solves.get_or_build(key, || {
            built = true;
            self.build_solve_entry(factors)
        })?;
        let entry = slot.get();
        let kind = self.choose_policy(&entry.adaptive);
        let (mut scratch, info) = entry.scratches.lease(|| entry.compiled.scratch());
        self.note_lease(info);
        // Sequential runs fork no team — don't lease (or ever spawn) one.
        let lease = kind.policy().map(|_| self.pools.lease());
        // The scratch lease is RAII: an error (or panic) returns it and
        // keeps the overlap counters honest. Lone sequential requests take
        // the fused path: one pass over each factor's values instead of
        // gather + run (bit-exact with the split path; the batched
        // `submit_batch` flow keeps the split so one gather serves a whole
        // same-factor group).
        let (fwd, bwd) = if kind == ExecutorKind::Sequential {
            if let Some(cause) = cancel.and_then(CancelToken::check) {
                return Err(crate::RuntimeError::from(cause));
            }
            entry
                .compiled
                .solve_fused_sequential(factors, b, x, &mut scratch)?
        } else {
            entry.compiled.load_values(factors, &mut scratch)?;
            entry.compiled.solve_loaded_cancellable(
                lease.as_deref(),
                kind,
                b,
                x,
                &mut scratch,
                cancel,
            )?
        };
        drop(scratch);
        let wall_ns = (fwd.wall + bwd.wall).as_nanos() as f64;
        entry
            .adaptive
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(kind, wall_ns);
        self.policy_runs[arm_index(kind)].fetch_add(1, Ordering::Relaxed);
        Ok(SolveOutcome {
            policy: kind,
            cached: !built,
            pattern: key,
            concurrent: info.active,
            reports: (fwd, bwd),
        })
    }

    /// Runs a generic loop over the dependence structure of a
    /// lower-triangular matrix (diagonal entries allowed and ignored),
    /// through the plan cache.
    ///
    /// The body is the caller's; only the *structure* is cached, so the
    /// same pattern may be run with any body and any values. Results land
    /// in `out` exactly as from [`PlannedLoop::run`].
    pub fn run<B: LoopBody>(&self, l: &Csr, body: &B, out: &mut [f64]) -> Result<RunOutcome> {
        let key = l.pattern_fingerprint();
        let mut built = false;
        let slot = self.loops.get_or_build(key, || {
            built = true;
            self.build_loop_entry(DepGraph::from_lower_triangular(l)?)
        })?;
        self.run_loop_entry(slot.get(), key, built, body, out, None)
    }

    /// Runs a generic loop over a cacheable [`crate::LoopSpec`] — the
    /// analysis product `rtpl::DoConsider::into_spec` emits. The first
    /// request for a spec's structure schedules it; every later request
    /// (same or different body/values) reuses the cached [`PlannedLoop`].
    /// Output is bit-exact with running the plan directly.
    pub fn run_spec<B: LoopBody>(
        &self,
        spec: &crate::LoopSpec,
        body: &B,
        out: &mut [f64],
    ) -> Result<RunOutcome> {
        self.run_spec_with_cancel(spec, body, out, None)
    }

    /// [`Runtime::run_spec`] with failure containment (see
    /// [`Runtime::solve_with_cancel`]).
    pub(crate) fn run_spec_with_cancel<B: LoopBody>(
        &self,
        spec: &crate::LoopSpec,
        body: &B,
        out: &mut [f64],
        cancel: Option<&CancelToken>,
    ) -> Result<RunOutcome> {
        let key = spec.key();
        let mut built = false;
        let slot = self.loops.get_or_build(key, || {
            built = true;
            self.build_loop_entry(spec.graph().clone())
        })?;
        self.run_loop_entry(slot.get(), key, built, body, out, cancel)
    }

    /// The shared execution half of [`Runtime::run`] / [`Runtime::run_spec`].
    pub(crate) fn run_loop_entry<B: LoopBody>(
        &self,
        entry: &LoopEntry,
        key: PatternFingerprint,
        built: bool,
        body: &B,
        out: &mut [f64],
        cancel: Option<&CancelToken>,
    ) -> Result<RunOutcome> {
        let kind = self.choose_policy(&entry.adaptive);
        let (report, concurrent) = match kind.policy() {
            // The sequential reference writes straight to `out` — no
            // scratch needed, but the in-flight use is still counted so
            // `concurrent`/`peak_same_pattern` see every request. A
            // sequential run has no cancellation points, so the token is
            // consulted once at entry; a panicking body unwinds only to
            // here and fails this request alone.
            None => {
                let (_guard, active) = entry.scratches.track();
                self.peak_same_pattern.fetch_max(active, Ordering::Relaxed);
                if let Some(cause) = cancel.and_then(CancelToken::check) {
                    return Err(crate::RuntimeError::from(cause));
                }
                let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    entry.plan.run_sequential(body, out)
                }))
                .map_err(|_| crate::RuntimeError::BodyPanicked { workers: 0 })?;
                (report, active)
            }
            Some(policy) => {
                let (scratch, info) = entry.scratches.lease(|| entry.plan.scratch());
                self.note_lease(info);
                let pool = self.pools.lease();
                let report = entry
                    .plan
                    .try_run_in(&scratch, &pool, policy, body, out, cancel)?;
                (report, info.active)
            }
        };
        let wall_ns = report.wall.as_nanos() as f64;
        entry
            .adaptive
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(kind, wall_ns);
        self.policy_runs[arm_index(kind)].fetch_add(1, Ordering::Relaxed);
        Ok(RunOutcome {
            policy: kind,
            cached: !built,
            pattern: key,
            concurrent,
            report,
        })
    }

    /// Runs the linear recurrence `x(i) = rhs(i) − Σ a_k·x(dep_k)` over a
    /// cacheable [`crate::LoopSpec`], through the **compiled** loop cache:
    /// the first request compiles the structure into a schedule-order
    /// layout ([`CompiledPlan`]); every later request attaches `vals` (one
    /// coefficient per dependence edge, adjacency order) by a one-pass
    /// gather and streams the layout. Bit-exact with running an equivalent
    /// body through [`Runtime::run_spec`].
    pub fn run_linear(
        &self,
        spec: &crate::LoopSpec,
        vals: &[f64],
        rhs: &[f64],
        out: &mut [f64],
    ) -> Result<RunOutcome> {
        self.run_linear_with_cancel(spec, vals, rhs, out, None)
    }

    /// [`Runtime::run_linear`] with failure containment (see
    /// [`Runtime::solve_with_cancel`]).
    pub(crate) fn run_linear_with_cancel(
        &self,
        spec: &crate::LoopSpec,
        vals: &[f64],
        rhs: &[f64],
        out: &mut [f64],
        cancel: Option<&CancelToken>,
    ) -> Result<RunOutcome> {
        let key = spec.key();
        let mut built = false;
        let slot = self.linears.get_or_build(key, || {
            built = true;
            self.build_linear_entry(spec)
        })?;
        let entry = slot.get();
        let kind = self.choose_policy(&entry.adaptive);
        let (mut scratch, info) = entry.scratches.lease(|| entry.compiled.scratch());
        self.note_lease(info);
        entry
            .compiled
            .load_values(&mut scratch, vals)
            .map_err(map_compiled)?;
        let report = match kind.policy() {
            None => {
                // Compiled linear sweeps carry no user body; only the
                // entry-time deadline check applies on the sequential arm.
                if let Some(cause) = cancel.and_then(CancelToken::check) {
                    return Err(crate::RuntimeError::from(cause));
                }
                entry.compiled.run_sequential(&mut scratch, rhs, out)
            }
            Some(policy) => {
                let pool = self.pools.lease();
                entry
                    .compiled
                    .try_run(&pool, policy, &mut scratch, rhs, out, cancel)?
            }
        };
        let concurrent = info.active;
        drop(scratch);
        self.observe_group(&entry.adaptive, kind, report.wall.as_nanos() as f64, 1);
        Ok(RunOutcome {
            policy: kind,
            cached: !built,
            pattern: key,
            concurrent,
            report,
        })
    }

    /// The attached persistent plan store, if any.
    pub fn store(&self) -> Option<&PlanStore> {
        self.store.as_ref()
    }

    /// True when the store holds a (possibly stale) record for `key` —
    /// the disk rung of the memory → disk → cold lookup ladder. A pure
    /// index peek: no payload is read or validated, so a `true` may still
    /// decode-fail into a cold inspection later.
    pub fn store_contains(&self, key: PatternFingerprint) -> bool {
        self.store
            .as_ref()
            .is_some_and(|s| s.contains(key.as_u128()))
    }

    /// Re-persists every resident solve plan with its *current* adaptive
    /// snapshot and blocks until the store has flushed. Cold builds spill
    /// their artifact before any run has been measured; calling this at a
    /// natural boundary (server shutdown, end of a batch campaign) makes
    /// the learned explore/exploit state durable too. Returns the number
    /// of entries written (0 without a store).
    pub fn persist_learned(&self) -> usize {
        let Some(store) = self.store.as_ref() else {
            return 0;
        };
        let mut written = 0;
        self.solves.for_each_built(|key, entry| {
            if store.put(key, self.encode_solve_payload(entry)) {
                self.store_writes.fetch_add(1, Ordering::Relaxed);
                written += 1;
            }
        });
        store.flush();
        written
    }

    /// Pre-populates the memory cache from the store's most-recently-used
    /// head: up to `limit` persisted patterns, hottest first (by the
    /// store's per-key recency then hit count), are decoded and installed
    /// on a background thread so the first real request for each is a
    /// plain memory hit. Blocks until warming finishes — callers wanting
    /// warm-up concurrent with request traffic call this from their own
    /// thread (as `rtpl-server` does at spawn). Undecodable records are
    /// skipped (counted in [`RuntimeStats::store_load_errors`]); returns
    /// the number of plans installed.
    pub fn warm_from_store(&self, limit: usize) -> usize {
        let Some(store) = self.store.as_ref() else {
            return 0;
        };
        let keys: Vec<u128> = store.keys_by_recency().into_iter().take(limit).collect();
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let mut warmed = 0;
                    for key in keys {
                        let fp = PatternFingerprint::from_halves((key >> 64) as u64, key as u64);
                        if self.solves.contains(fp) {
                            continue;
                        }
                        if let Some(entry) = self.load_solve_entry(key) {
                            if self.solves.get_or_build(fp, move || Ok(entry)).is_ok() {
                                warmed += 1;
                            }
                        }
                    }
                    warmed
                })
                .join()
                .unwrap_or(0)
        })
    }

    /// A preconditioner whose ILU applications go through this runtime's
    /// plan cache — hand it to [`rtpl_krylov::cg`]/`gmres`/`bicgstab`.
    pub fn preconditioner<'a>(&'a self, factors: &'a IluFactors) -> CachedIlu<'a> {
        CachedIlu {
            runtime: self,
            factors,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RuntimeStats {
        let mut policy_runs = [0u64; 5];
        for (k, c) in self.policy_runs.iter().enumerate() {
            policy_runs[k] = c.load(Ordering::Relaxed);
        }
        RuntimeStats {
            solves: self.solves.stats(),
            loops: self.loops.stats(),
            linears: self.linears.stats(),
            batches: self.batches.load(Ordering::Relaxed),
            batch_jobs: self.batch_jobs.load(Ordering::Relaxed),
            pools_created: self.pools.created(),
            policy_runs,
            scratches_created: self.scratches_created.load(Ordering::Relaxed),
            peak_same_pattern: self.peak_same_pattern.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            store_writes: self.store_writes.load(Ordering::Relaxed),
            // Open-time scan repairs (a truncated tail dropped on open)
            // surface through the same counter as per-record load
            // failures: both mean "persisted bytes could not be used".
            store_load_errors: self.store_load_errors.load(Ordering::Relaxed)
                + self.store.as_ref().map_or(0, |s| s.stats().scan_repairs),
            body_panics: self.body_panics.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            circuit_open: self.circuit_open.load(Ordering::Relaxed),
            pool_rebuilds: self.pools.rebuilds(),
            verified_plans: self.verified_plans.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
            coalesce_phases_before: self.coalesce_phases_before.load(Ordering::Relaxed),
            coalesce_phases_after: self.coalesce_phases_after.load(Ordering::Relaxed),
            supernode_positions: self.supernode_positions.load(Ordering::Relaxed),
        }
    }
}

/// Maps a compiled-layout error into runtime terms.
pub(crate) fn map_compiled(e: rtpl_executor::compiled::CompiledError) -> crate::RuntimeError {
    use rtpl_executor::compiled::CompiledError;
    match e {
        CompiledError::ZeroScale { row } => {
            crate::RuntimeError::Sparse(rtpl_sparse::SparseError::ZeroPivot { row })
        }
        other => crate::RuntimeError::Sparse(rtpl_sparse::SparseError::InvalidStructure(format!(
            "compiled loop: {other}"
        ))),
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("cfg", &self.cfg)
            .field("cost", self.selector.cost_model())
            .field("stats", &self.stats())
            .finish()
    }
}

/// An ILU preconditioner application routed through a [`Runtime`]'s plan
/// cache: every Krylov iteration's two triangular sweeps are cache hits
/// after the first.
pub struct CachedIlu<'a> {
    runtime: &'a Runtime,
    factors: &'a IluFactors,
}

impl Precondition for CachedIlu<'_> {
    fn apply(&self, _pool: &WorkerPool, r: &[f64], z: &mut [f64], _work: &mut [f64]) {
        // The runtime leases its own pools (sized to its plans); the
        // solver's pool keeps doing the doall kernels. Applications enter
        // through the unified Job front door, like every other request.
        // PANIC: `Precondition::apply` has no error channel; the factors
        // were accepted when this preconditioner was built, so a failure
        // here is unrecoverable mid-iteration.
        self.runtime
            .submit(crate::Job::<crate::NoBody>::solve(self.factors, r, z))
            .expect("cached ILU application failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpl_executor::ValueSource;
    use rtpl_sparse::gen::laplacian_5pt;
    use rtpl_sparse::ilu0;
    use rtpl_sparse::triangular::{solve_lower, solve_upper, Diag};

    fn test_cfg() -> RuntimeConfig {
        RuntimeConfig {
            nprocs: 2,
            calibrate: false,
            ..RuntimeConfig::default()
        }
    }

    fn reference(f: &IluFactors, b: &[f64]) -> Vec<f64> {
        let n = f.n();
        let mut y = vec![0.0; n];
        solve_lower(&f.l, b, Diag::Unit, &mut y).unwrap();
        let mut x = vec![0.0; n];
        solve_upper(&f.u, &y, Diag::Stored, &mut x).unwrap();
        x
    }

    #[test]
    fn solve_is_correct_and_cached() {
        let rt = Runtime::new(test_cfg());
        let f = ilu0(&laplacian_5pt(9, 8)).unwrap();
        let n = f.n();
        for round in 0..5 {
            let b: Vec<f64> = (0..n).map(|i| ((i + round) as f64 * 0.17).sin()).collect();
            let expect = reference(&f, &b);
            let mut x = vec![0.0; n];
            let out = rt.solve(&f, &b, &mut x).unwrap();
            assert_eq!(out.cached, round > 0);
            assert!(
                rtpl_sparse::dense::max_abs_diff(&x, &expect) < 1e-12,
                "round {round}"
            );
        }
        let s = rt.stats();
        assert_eq!(s.solves.builds, 1);
        assert_eq!(s.solves.hits, 4);
        assert_eq!(s.policy_runs.iter().sum::<u64>(), 5);
    }

    #[test]
    fn oversubscribed_calibrated_host_settles_on_sequential() {
        // nprocs strictly above the detected core count: the calibrated
        // selector's host clamp must retire every parallel arm, so each and
        // every run — including the very first exploration — is sequential.
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let rt = Runtime::new(RuntimeConfig {
            nprocs: cores * 2,
            calibrate: true,
            ..RuntimeConfig::default()
        });
        assert_eq!(rt.selector.host_procs(), Some(cores));
        let f = ilu0(&laplacian_5pt(9, 8)).unwrap();
        let n = f.n();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        for _ in 0..8 {
            let out = rt.solve(&f, &b, &mut x).unwrap();
            assert_eq!(out.policy, ExecutorKind::Sequential);
        }
        let s = rt.stats();
        assert_eq!(s.runs_for(ExecutorKind::Sequential), 8);
        // And it never paid for a worker pool.
        assert_eq!(s.pools_created, 0);
    }

    #[test]
    fn render_plaintext_lists_every_counter_once() {
        let rt = Runtime::new(test_cfg());
        let f = ilu0(&laplacian_5pt(6, 6)).unwrap();
        let b = vec![1.0; f.n()];
        let mut x = vec![0.0; f.n()];
        rt.solve(&f, &b, &mut x).unwrap();
        rt.solve(&f, &b, &mut x).unwrap();
        let text = rt.stats().render_plaintext();
        for needle in [
            "rtpl_solve_cache_hits 1",
            "rtpl_solve_cache_builds 1",
            "rtpl_loop_cache_hits 0",
            "rtpl_batches 0",
            "rtpl_body_panics 0",
            "rtpl_deadline_expired 0",
            "rtpl_circuit_open 0",
            "rtpl_pool_rebuilds 0",
            "rtpl_verify_failures 0",
            "rtpl_policy_runs_sequential",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // `name value` per line, every name unique.
        let names: Vec<&str> = text
            .lines()
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        let unique: std::collections::HashSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn coalescing_defaults_on_counts_and_stays_bit_exact() {
        let f = ilu0(&laplacian_5pt(9, 8)).unwrap();
        let n = f.n();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin()).collect();
        // Identical requests under a forced sequential policy, with and
        // without coalescing: same bits out, fewer phases in the stats.
        let seq = |factor: f64| {
            let rt = Runtime::new(RuntimeConfig {
                policy: Some(ExecutorKind::Sequential),
                coalesce_factor: factor,
                ..test_cfg()
            });
            let mut x = vec![0.0; n];
            rt.solve(&f, &b, &mut x).unwrap();
            (x, rt.stats())
        };
        let (x_on, s_on) = seq(1.0);
        let (x_off, s_off) = seq(0.0);
        assert_eq!(x_on, x_off, "coalescing must not change a single bit");
        assert!(
            s_on.coalesce_phases_after < s_on.coalesce_phases_before,
            "grain Tsynch/Tp must merge shallow mesh wavefronts ({s_on:?})"
        );
        assert_eq!(s_off.coalesce_phases_after, s_off.coalesce_phases_before);
        assert_eq!(
            s_on.coalesce_phases_before, s_off.coalesce_phases_before,
            "both runtimes saw the same wavefront structure"
        );
        // The rendered metrics carry the new counters.
        let text = s_on.render_plaintext();
        for needle in [
            "rtpl_coalesce_phases_before",
            "rtpl_coalesce_phases_after",
            "rtpl_supernode_positions",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn changed_grain_invalidates_the_stored_prior_context() {
        // A restart with a different coalescing factor must neither reuse
        // the stored artifact's schedule silently nor resume its prior as
        // if nothing changed: the artifact decodes (structure is valid),
        // but the prior context mismatch forces a fresh prediction. We
        // can't observe the recompute directly, so pin the observable
        // half: the solve stays correct and the store round-trip works
        // under both grains.
        let path = tmp_store("grain_context");
        let f = ilu0(&laplacian_5pt(8, 8)).unwrap();
        let n = f.n();
        let b = vec![1.0; n];
        {
            let rt = Runtime::new(store_cfg(&path));
            let mut x = vec![0.0; n];
            rt.solve(&f, &b, &mut x).unwrap();
            rt.store().unwrap().flush();
        }
        let rt = Runtime::new(RuntimeConfig {
            coalesce_factor: 0.0,
            ..store_cfg(&path)
        });
        let mut x = vec![0.0; n];
        rt.solve(&f, &b, &mut x).unwrap();
        assert!(rtpl_sparse::dense::max_abs_diff(&x, &reference(&f, &b)) < 1e-12);
        assert_eq!(rt.stats().store_hits, 1, "artifact itself still serves");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refactorized_values_hit_the_cached_structure() {
        let rt = Runtime::new(test_cfg());
        let a = laplacian_5pt(7, 7);
        let f1 = ilu0(&a).unwrap();
        let n = f1.n();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        rt.solve(&f1, &b, &mut x).unwrap();
        // New numbers, same pattern: no new plan, correct new answer.
        let mut a2 = a.clone();
        for (k, v) in a2.data_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.02 * (k % 5) as f64;
        }
        let f2 = ilu0(&a2).unwrap();
        let out = rt.solve(&f2, &b, &mut x).unwrap();
        assert!(out.cached);
        assert_eq!(rt.stats().solves.builds, 1);
        assert!(rtpl_sparse::dense::max_abs_diff(&x, &reference(&f2, &b)) < 1e-12);
    }

    #[test]
    fn forced_policy_is_respected() {
        let rt = Runtime::new(RuntimeConfig {
            policy: Some(ExecutorKind::PreScheduledElided),
            ..test_cfg()
        });
        let f = ilu0(&laplacian_5pt(6, 6)).unwrap();
        let b = vec![1.0; f.n()];
        let mut x = vec![0.0; f.n()];
        for _ in 0..3 {
            let out = rt.solve(&f, &b, &mut x).unwrap();
            assert_eq!(out.policy, ExecutorKind::PreScheduledElided);
        }
        let s = rt.stats();
        assert_eq!(s.runs_for(ExecutorKind::PreScheduledElided), 3);
        assert_eq!(s.dominant_policy(), ExecutorKind::PreScheduledElided);
    }

    struct Count<'a>(&'a DepGraph);
    impl LoopBody for Count<'_> {
        fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
            1.0 + self
                .0
                .deps(i)
                .iter()
                .map(|&d| src.get(d as usize))
                .sum::<f64>()
        }
    }

    #[test]
    fn generic_run_matches_sequential_and_caches() {
        let rt = Runtime::new(test_cfg());
        let l = laplacian_5pt(8, 8).strict_lower();
        let g = DepGraph::from_lower_triangular(&l).unwrap();
        let n = l.nrows();
        let mut expect = vec![0.0; n];
        rtpl_executor::sequential_body(n, &Count(&g), &mut expect);
        for round in 0..4 {
            let mut out = vec![0.0; n];
            let res = rt.run(&l, &Count(&g), &mut out).unwrap();
            assert_eq!(out, expect);
            assert_eq!(res.cached, round > 0);
            assert_eq!(res.report.total_iters() as usize, n);
        }
        assert_eq!(rt.stats().loops.builds, 1);
    }

    #[test]
    fn cached_preconditioner_drives_cg_through_the_cache() {
        use rtpl_krylov::{cg, KrylovConfig, Preconditioner, TriangularSolvePlan};
        let a = laplacian_5pt(14, 14);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
        let pool = WorkerPool::new(2);
        let cfg = KrylovConfig::default();
        let f = ilu0(&a).unwrap();

        // Reference: the classic in-crate ILU preconditioner.
        let plan =
            TriangularSolvePlan::new(&f, 2, ExecutorKind::SelfExecuting, Sorting::Global).unwrap();
        let mut x_ref = vec![0.0; n];
        let s_ref = cg(&pool, &a, &b, &mut x_ref, &Preconditioner::Ilu(plan), &cfg).unwrap();

        // Same solve, applications routed through the runtime cache.
        let rt = Runtime::new(RuntimeConfig {
            policy: Some(ExecutorKind::SelfExecuting),
            ..test_cfg()
        });
        let m = rt.preconditioner(&f);
        let mut x = vec![0.0; n];
        let s = cg(&pool, &a, &b, &mut x, &m, &cfg).unwrap();

        assert!(s.converged);
        assert_eq!(s.iterations, s_ref.iterations);
        assert!(rtpl_sparse::dense::max_abs_diff(&x, &x_ref) < 1e-12);
        let stats = rt.stats();
        assert_eq!(stats.solves.builds, 1, "one plan for the whole solve");
        // CG applies M⁻¹ once up front and once per iteration short of the
        // last; only the very first application misses.
        assert!(
            stats.solves.hits + 1 >= s.iterations as u64,
            "every application after the first must hit ({} hits, {} iterations)",
            stats.solves.hits,
            s.iterations
        );
    }

    #[test]
    fn sequential_requests_reuse_one_scratch() {
        let rt = Runtime::new(test_cfg());
        let f = ilu0(&laplacian_5pt(7, 7)).unwrap();
        let b = vec![1.0; f.n()];
        let mut x = vec![0.0; f.n()];
        for _ in 0..6 {
            let out = rt.solve(&f, &b, &mut x).unwrap();
            assert_eq!(out.concurrent, 1, "no overlap in a single-threaded loop");
        }
        let s = rt.stats();
        assert_eq!(s.scratches_created, 1, "free list reuses the one scratch");
        assert_eq!(s.peak_same_pattern, 1);
    }

    #[test]
    fn startup_calibration_yields_finite_positive_costs() {
        // The satellite requirement: the runtime wires the (previously
        // dead) host-calibration path and the resulting model is sane.
        let rt = Runtime::new(RuntimeConfig {
            nprocs: 2,
            shards: 2,
            capacity: 8,
            sorting: Sorting::Global,
            calibrate: true,
            policy: None,
            batch_workers: 0,
            store_path: None,
            ..RuntimeConfig::default()
        });
        let c = rt.cost_model();
        for (name, v) in [
            ("Tp", c.tp),
            ("Tsynch", c.tsynch),
            ("Tinc", c.tinc),
            ("Tcheck", c.tcheck),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} = {v}");
        }
        // Calibrated nanoseconds must still satisfy the paper's ordering:
        // a barrier costs more than a flop.
        assert!(c.r_synch() > 1.0);
    }

    fn tmp_store(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rtpl_runtime_unit_{}_{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn store_cfg(path: &std::path::Path) -> RuntimeConfig {
        RuntimeConfig {
            store_path: Some(path.to_path_buf()),
            ..test_cfg()
        }
    }

    #[test]
    fn restart_resumes_plans_and_learning_from_the_store() {
        let path = tmp_store("restart");
        let f = ilu0(&laplacian_5pt(9, 8)).unwrap();
        let n = f.n();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let expect = reference(&f, &b);

        // First process lifetime: cold inspection, learning, spill.
        let learned_counts = {
            let rt = Runtime::new(store_cfg(&path));
            let mut x = vec![0.0; n];
            for _ in 0..6 {
                rt.solve(&f, &b, &mut x).unwrap();
            }
            let s = rt.stats();
            assert_eq!(s.store_hits, 0);
            assert_eq!(s.store_misses, 1, "one consult on the one cold build");
            assert!(s.store_writes >= 1);
            assert_eq!(s.store_load_errors, 0);
            assert_eq!(rt.persist_learned(), 1);
            let key = Runtime::solve_key(&f);
            assert!(rt.store_contains(key));
            s.policy_runs
        };

        // Second process lifetime: the cache miss is served from disk —
        // no inspector run — and the answer is bit-exact.
        let rt = Runtime::new(store_cfg(&path));
        let mut x = vec![0.0; n];
        let out = rt.solve(&f, &b, &mut x).unwrap();
        assert!(!out.cached, "memory cache starts empty");
        // Tolerance, not equality: the resumed incumbent may be a parallel
        // discipline whose summation order differs from the sequential
        // reference by an ulp. Per-policy bit-exactness of store-loaded vs
        // freshly inspected plans is pinned in `tests/plan_store.rs`.
        assert!(rtpl_sparse::dense::max_abs_diff(&x, &expect) < 1e-12);
        let s = rt.stats();
        assert_eq!(s.store_hits, 1);
        assert_eq!(s.store_misses, 0);
        assert_eq!(s.store_load_errors, 0);
        // Learning resumed: the first post-restart run uses an arm the
        // first lifetime actually measured (the resumed incumbent), never
        // an arm it retired. (Resume *semantics* — exploit-not-explore,
        // host-honesty drops — are pinned down in the selector tests.)
        assert!(
            learned_counts[arm_index(out.policy)] > 0,
            "post-restart policy {:?} was never measured before the restart",
            out.policy
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_from_store_preloads_the_memory_cache() {
        let path = tmp_store("warm");
        let f1 = ilu0(&laplacian_5pt(7, 7)).unwrap();
        let f2 = ilu0(&laplacian_5pt(6, 9)).unwrap();
        {
            let rt = Runtime::new(store_cfg(&path));
            for f in [&f1, &f2] {
                let b = vec![1.0; f.n()];
                let mut x = vec![0.0; f.n()];
                rt.solve(f, &b, &mut x).unwrap();
            }
            rt.store().unwrap().flush();
        }
        let rt = Runtime::new(store_cfg(&path));
        assert_eq!(rt.warm_from_store(16), 2);
        // Both patterns are now memory hits: no build, no store consult.
        for f in [&f1, &f2] {
            let b = vec![1.0; f.n()];
            let mut x = vec![0.0; f.n()];
            let out = rt.solve(f, &b, &mut x).unwrap();
            assert!(out.cached, "warmed pattern must hit the memory cache");
            assert!(rtpl_sparse::dense::max_abs_diff(&x, &reference(f, &b)) < 1e-12);
        }
        let s = rt.stats();
        assert_eq!(s.solves.builds, 2, "warming installs, solving reuses");
        assert_eq!(s.store_hits, 2);
        // Warming twice is idempotent: resident patterns are skipped.
        assert_eq!(rt.warm_from_store(16), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn nprocs_mismatch_rejects_the_stored_artifact() {
        let path = tmp_store("nprocs");
        let f = ilu0(&laplacian_5pt(8, 7)).unwrap();
        let b = vec![1.0; f.n()];
        {
            let rt = Runtime::new(store_cfg(&path));
            let mut x = vec![0.0; f.n()];
            rt.solve(&f, &b, &mut x).unwrap();
            rt.store().unwrap().flush();
        }
        // Same store, different processor count: the persisted layout is
        // per-processor and cannot serve — typed rejection, cold rebuild,
        // correct answer.
        let rt = Runtime::new(RuntimeConfig {
            nprocs: 3,
            ..store_cfg(&path)
        });
        let mut x = vec![0.0; f.n()];
        rt.solve(&f, &b, &mut x).unwrap();
        assert!(rtpl_sparse::dense::max_abs_diff(&x, &reference(&f, &b)) < 1e-12);
        let s = rt.stats();
        assert_eq!(s.store_hits, 0);
        assert_eq!(s.store_load_errors, 1);
        assert_eq!(s.solves.builds, 1, "fallback paid the cold inspection");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn evicted_entries_resurrect_from_disk_without_reinspection() {
        let path = tmp_store("evict");
        let rt = Runtime::new(RuntimeConfig {
            shards: 1,
            capacity: 2,
            ..store_cfg(&path)
        });
        let meshes = [(4usize, 4usize), (4, 5), (4, 6)];
        for &(mx, my) in &meshes {
            let f = ilu0(&laplacian_5pt(mx, my)).unwrap();
            let b = vec![1.0; f.n()];
            let mut x = vec![0.0; f.n()];
            rt.solve(&f, &b, &mut x).unwrap();
        }
        rt.store().unwrap().flush();
        assert_eq!(rt.stats().solves.evictions, 1, "capacity 2, three plans");
        // The evicted first pattern comes back from the store's spill of
        // its own cold build — within one process lifetime.
        let f = ilu0(&laplacian_5pt(4, 4)).unwrap();
        let b = vec![1.0; f.n()];
        let mut x = vec![0.0; f.n()];
        rt.solve(&f, &b, &mut x).unwrap();
        assert!(rtpl_sparse::dense::max_abs_diff(&x, &reference(&f, &b)) < 1e-12);
        let s = rt.stats();
        assert_eq!(s.store_hits, 1, "resurrected from disk, not re-inspected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unopenable_store_degrades_to_storeless_service() {
        let path = tmp_store("bad_magic");
        std::fs::write(&path, b"definitely not a store file").unwrap();
        let rt = Runtime::new(store_cfg(&path));
        assert!(rt.store().is_none());
        let f = ilu0(&laplacian_5pt(6, 6)).unwrap();
        let b = vec![1.0; f.n()];
        let mut x = vec![0.0; f.n()];
        rt.solve(&f, &b, &mut x).unwrap();
        assert!(rtpl_sparse::dense::max_abs_diff(&x, &reference(&f, &b)) < 1e-12);
        let s = rt.stats();
        assert_eq!(s.store_load_errors, 1, "the failed open leaves its trace");
        assert_eq!(s.store_hits + s.store_misses + s.store_writes, 0);
        let _ = std::fs::remove_file(&path);
    }

    /// A body that panics on every iteration — the breaker/containment
    /// tests' fault generator.
    struct AlwaysPanics;
    impl LoopBody for AlwaysPanics {
        fn eval<S: ValueSource>(&self, _i: usize, _src: &S) -> f64 {
            panic!("injected body failure")
        }
    }

    #[test]
    fn expired_deadline_is_typed_and_counted() {
        let rt = Runtime::new(test_cfg());
        let f = ilu0(&laplacian_5pt(6, 6)).unwrap();
        let b = vec![1.0; f.n()];
        let mut x = vec![0.0; f.n()];
        let job = crate::Job::<crate::NoBody>::solve(&f, &b, &mut x)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            rt.submit(job).unwrap_err(),
            crate::RuntimeError::DeadlineExceeded
        );
        assert_eq!(rt.stats().deadline_expired, 1);
        // The expiry was the client's fault: the same pattern still serves.
        let out = rt
            .submit(crate::Job::<crate::NoBody>::solve(&f, &b, &mut x))
            .unwrap();
        assert!(matches!(out, crate::JobOutcome::Solve(_)));
        assert!(rtpl_sparse::dense::max_abs_diff(&x, &reference(&f, &b)) < 1e-12);
    }

    #[test]
    fn repeated_body_panics_trip_the_pattern_breaker() {
        let rt = Runtime::new(RuntimeConfig {
            policy: Some(ExecutorKind::SelfExecuting),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(20),
            ..test_cfg()
        });
        let l = laplacian_5pt(6, 6).strict_lower();
        let spec = crate::LoopSpec::new(DepGraph::from_lower_triangular(&l).unwrap());
        let n = l.nrows();
        let mut out = vec![0.0; n];
        for _ in 0..3 {
            let e = rt
                .submit(crate::Job::looped(&spec, &AlwaysPanics, &mut out))
                .unwrap_err();
            assert!(matches!(e, crate::RuntimeError::BodyPanicked { .. }), "{e}");
        }
        // Open: the next request is rejected without running anything.
        let e = rt
            .submit(crate::Job::looped(&spec, &AlwaysPanics, &mut out))
            .unwrap_err();
        assert_eq!(e, crate::RuntimeError::CircuitOpen);
        let s = rt.stats();
        assert_eq!(s.body_panics, 3);
        assert_eq!(s.circuit_open, 1);
        // After the cooldown a probe is admitted; a healthy body closes
        // the circuit and the pattern serves normally again.
        std::thread::sleep(Duration::from_millis(25));
        let g = DepGraph::from_lower_triangular(&l).unwrap();
        rt.submit(crate::Job::looped(&spec, &Count(&g), &mut out))
            .unwrap();
        rt.submit(crate::Job::looped(&spec, &Count(&g), &mut out))
            .unwrap();
        let mut expect = vec![0.0; n];
        rtpl_executor::sequential_body(n, &Count(&g), &mut expect);
        assert_eq!(out, expect);
    }

    #[test]
    fn open_breaker_rejects_whole_batch_groups() {
        let rt = Runtime::new(RuntimeConfig {
            policy: Some(ExecutorKind::SelfExecuting),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60),
            ..test_cfg()
        });
        let l = laplacian_5pt(5, 5).strict_lower();
        let spec = crate::LoopSpec::new(DepGraph::from_lower_triangular(&l).unwrap());
        let n = l.nrows();
        let (mut o1, mut o2) = (vec![0.0; n], vec![0.0; n]);
        let first = rt.submit_batch(vec![
            crate::Job::looped(&spec, &AlwaysPanics, &mut o1),
            crate::Job::looped(&spec, &AlwaysPanics, &mut o2),
        ]);
        assert_eq!(first.ok_count(), 0);
        let second = rt.submit_batch(vec![
            crate::Job::looped(&spec, &AlwaysPanics, &mut o1),
            crate::Job::looped(&spec, &AlwaysPanics, &mut o2),
        ]);
        for j in &second.jobs {
            assert_eq!(*j.as_ref().unwrap_err(), crate::RuntimeError::CircuitOpen);
        }
        assert_eq!(rt.stats().circuit_open, 1, "rejection is per group");
    }

    #[test]
    fn lru_bound_evicts_but_keeps_serving() {
        let rt = Runtime::new(RuntimeConfig {
            shards: 1,
            capacity: 2,
            ..test_cfg()
        });
        let meshes = [(4usize, 4usize), (4, 5), (4, 6), (4, 7)];
        for &(mx, my) in &meshes {
            let f = ilu0(&laplacian_5pt(mx, my)).unwrap();
            let b = vec![1.0; f.n()];
            let mut x = vec![0.0; f.n()];
            let out = rt.solve(&f, &b, &mut x).unwrap();
            assert!(!out.cached);
            assert!(rtpl_sparse::dense::max_abs_diff(&x, &reference(&f, &b)) < 1e-12);
        }
        let s = rt.stats();
        assert_eq!(s.solves.builds, 4);
        assert_eq!(s.solves.evictions, 2);
    }
}
