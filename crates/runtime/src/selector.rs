//! Adaptive executor-policy selection.
//!
//! Which synchronization discipline wins is exactly what the paper's §4/§5
//! cost model predicts from the schedule, the dependence structure, and
//! the per-operation costs (`Tp`, `Tsynch`, `Tinc`, `Tcheck`). The
//! [`PolicySelector`] runs that model — the `rtpl-sim` discrete-event
//! simulation over the *actual* planned schedule, with a [`CostModel`]
//! calibrated on the host at startup — to produce a **prior** time per
//! policy. Each cached pattern then carries an [`AdaptiveState`] that
//! starts from the prior and folds in the measured wall times of real runs
//! ([`ExecReport`]s): the first run of a pattern may explore a
//! near-best-predicted policy, the steady state exploits the fastest
//! *measured* one. Everything is deterministic — exploration is by
//! bookkeeping, not randomness.
//!
//! [`ExecReport`]: rtpl_executor::ExecReport

use rtpl_executor::PlannedLoop;
use rtpl_krylov::ExecutorKind;
use rtpl_sim::{self as sim, CostModel};

/// The candidate arms, in a fixed order (indices into every per-arm array).
/// `Sequential` is a genuine candidate: for small or serial patterns the
/// model (correctly) predicts that forking a team cannot pay for itself.
pub const ARMS: [ExecutorKind; 5] = [
    ExecutorKind::Sequential,
    ExecutorKind::SelfExecuting,
    ExecutorKind::PreScheduled,
    ExecutorKind::PreScheduledElided,
    ExecutorKind::Doacross,
];

/// Index of `kind` in [`ARMS`].
pub fn arm_index(kind: ExecutorKind) -> usize {
    ARMS.iter()
        .position(|&k| k == kind)
        .expect("every ExecutorKind is an arm")
}

/// Explore any unmeasured arm whose predicted time is within this factor
/// of the best prediction; arms predicted far off the pace are never paid
/// for. `1.0` would trust the model blindly; larger values buy robustness
/// against model error with a bounded number of extra first runs.
const EXPLORE_FACTOR: f64 = 1.5;

/// Weight of a new observation against the running estimate (exponential
/// moving average, so drifting system load is tracked).
const EWMA_ALPHA: f64 = 0.3;

/// Predicts per-policy execution times for planned loops under a cost
/// model.
#[derive(Clone, Debug)]
pub struct PolicySelector {
    cost: CostModel,
}

impl PolicySelector {
    /// A selector predicting with `cost` (nanoseconds per operation when
    /// host-calibrated; any consistent unit otherwise).
    pub fn new(cost: CostModel) -> Self {
        PolicySelector { cost }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Predicted time of every arm for one planned loop, indexed as
    /// [`ARMS`]. Weights are the row-substitution flop counts (1 + deps),
    /// matching how every table harness in the workspace weighs indices.
    /// `Doacross` is `+∞` for non-forward graphs (it cannot run there).
    pub fn predict(&self, plan: &PlannedLoop) -> [f64; 5] {
        let g = plan.graph();
        let s = plan.schedule();
        let weights: Vec<f64> = (0..g.n()).map(|i| 1.0 + g.deps(i).len() as f64).collect();
        let w = Some(&weights[..]);
        let mut out = [f64::INFINITY; 5];
        out[arm_index(ExecutorKind::Sequential)] = sim::sim_sequential(g.n(), w, &self.cost);
        out[arm_index(ExecutorKind::SelfExecuting)] =
            sim::sim_self_executing(s, g, w, &self.cost).time;
        out[arm_index(ExecutorKind::PreScheduled)] = sim::sim_pre_scheduled(s, w, &self.cost).time;
        out[arm_index(ExecutorKind::PreScheduledElided)] =
            sim::sim_pre_scheduled_elided(s, plan.barrier_plan(), w, &self.cost).time;
        if g.is_forward() {
            out[arm_index(ExecutorKind::Doacross)] =
                sim::sim_doacross(g, s.nprocs(), w, &self.cost).time;
        }
        out
    }
}

/// Per-pattern explore/exploit state: model prior + measured wall times.
#[derive(Clone, Debug)]
pub struct AdaptiveState {
    prior: [f64; 5],
    measured: [f64; 5],
    count: [u64; 5],
}

impl AdaptiveState {
    /// Starts from a model prediction per arm (`+∞` disables an arm).
    pub fn new(prior: [f64; 5]) -> Self {
        assert!(
            prior.iter().any(|p| p.is_finite()),
            "at least one arm must be feasible"
        );
        AdaptiveState {
            prior,
            measured: [0.0; 5],
            count: [0; 5],
        }
    }

    /// The policy to use for the next run.
    ///
    /// Exploration phase: any arm never yet measured whose prior is within
    /// [`EXPLORE_FACTOR`] of the best prior gets one run (in prior order,
    /// best first). Steady state: the arm with the smallest **measured**
    /// mean. Priors and measurements are never compared against each other
    /// — priors may be in abstract flop units while measurements are wall
    /// nanoseconds, and the idealized model under-predicts real runs — so
    /// an arm pruned by the explore window is genuinely never paid for.
    pub fn choose(&self) -> ExecutorKind {
        let best_prior = self.prior.iter().cloned().fold(f64::INFINITY, f64::min);
        let explore = (0..ARMS.len())
            .filter(|&k| self.count[k] == 0 && self.prior[k] <= best_prior * EXPLORE_FACTOR)
            .min_by(|&a, &b| self.prior[a].total_cmp(&self.prior[b]));
        if let Some(k) = explore {
            return ARMS[k];
        }
        // The exploration phase always measures at least one arm first.
        let best = (0..ARMS.len())
            .filter(|&k| self.count[k] > 0)
            .min_by(|&a, &b| self.measured[a].total_cmp(&self.measured[b]))
            .expect("explore phase measured at least one arm");
        ARMS[best]
    }

    /// Folds one measured wall time (nanoseconds) into the arm's estimate.
    pub fn observe(&mut self, kind: ExecutorKind, wall_ns: f64) {
        let k = arm_index(kind);
        if self.count[k] == 0 {
            self.measured[k] = wall_ns;
        } else {
            self.measured[k] = (1.0 - EWMA_ALPHA) * self.measured[k] + EWMA_ALPHA * wall_ns;
        }
        self.count[k] += 1;
    }

    /// Runs observed per arm, indexed as [`ARMS`].
    pub fn counts(&self) -> [u64; 5] {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpl_inspector::{DepGraph, Schedule, Wavefronts};
    use rtpl_sparse::gen::laplacian_5pt;

    fn mesh_plan(nx: usize, ny: usize, p: usize) -> PlannedLoop {
        let l = laplacian_5pt(nx, ny).strict_lower();
        let g = DepGraph::from_lower_triangular(&l).unwrap();
        let wf = Wavefronts::compute(&g).unwrap();
        PlannedLoop::new(g, Schedule::global(&wf, p).unwrap()).unwrap()
    }

    #[test]
    fn predictions_are_finite_positive_and_ordered_sanely() {
        let sel = PolicySelector::new(CostModel::multimax());
        let plan = mesh_plan(20, 20, 4);
        let pred = sel.predict(&plan);
        for (k, &t) in pred.iter().enumerate() {
            assert!(t.is_finite() && t > 0.0, "{:?}: {t}", ARMS[k]);
        }
        // Barrier elision can only help the barrier discipline.
        assert!(
            pred[arm_index(ExecutorKind::PreScheduledElided)]
                <= pred[arm_index(ExecutorKind::PreScheduled)]
        );
        // On a big wavefront-rich mesh under Multimax costs, the paper's
        // recommended self-executing discipline beats plain barriers.
        assert!(
            pred[arm_index(ExecutorKind::SelfExecuting)]
                < pred[arm_index(ExecutorKind::PreScheduled)]
        );
    }

    #[test]
    fn first_choice_is_best_prior_then_measurements_take_over() {
        let mut st = AdaptiveState::new([100.0, 40.0, 90.0, 80.0, 50.0]);
        // Exploration: best prior first (SelfExecuting, index 1)...
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
        st.observe(ExecutorKind::SelfExecuting, 55.0);
        // ...then the remaining unmeasured near-best arm (Doacross, 50 ≤ 1.5·40).
        assert_eq!(st.choose(), ExecutorKind::Doacross);
        st.observe(ExecutorKind::Doacross, 70.0);
        // Steady state: measured SelfExecuting (55) beats measured
        // Doacross (70); unmeasured arms no longer compete.
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
        // A drifting system can flip the choice.
        for _ in 0..20 {
            st.observe(ExecutorKind::SelfExecuting, 200.0);
        }
        assert_eq!(st.choose(), ExecutorKind::Doacross);
    }

    #[test]
    fn infinite_prior_disables_an_arm() {
        let st = AdaptiveState::new([10.0, f64::INFINITY, f64::INFINITY, f64::INFINITY, 11.0]);
        assert_eq!(st.choose(), ExecutorKind::Sequential);
        let counts = st.counts();
        assert_eq!(counts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn far_off_priors_are_never_explored() {
        let mut st = AdaptiveState::new([1000.0, 10.0, 1000.0, 1000.0, 1000.0]);
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
        st.observe(ExecutorKind::SelfExecuting, 12.0);
        // No other arm is within the explore window: exploit immediately.
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
    }
}
