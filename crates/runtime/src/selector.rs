//! Adaptive executor-policy selection.
//!
//! Which synchronization discipline wins is exactly what the paper's §4/§5
//! cost model predicts from the schedule, the dependence structure, and
//! the per-operation costs (`Tp`, `Tsynch`, `Tinc`, `Tcheck`). The
//! [`PolicySelector`] runs that model — the `rtpl-sim` discrete-event
//! simulation over the *actual* planned schedule, with a [`CostModel`]
//! calibrated on the host at startup — to produce a **prior** time per
//! policy. Each cached pattern then carries an [`AdaptiveState`] that
//! starts from the prior and folds in the measured wall times of real runs
//! ([`ExecReport`]s): the first run of a pattern may explore a
//! near-best-predicted policy, the steady state exploits the fastest
//! *measured* one. Everything is deterministic — exploration is by
//! bookkeeping, not randomness.
//!
//! [`ExecReport`]: rtpl_executor::ExecReport

use rtpl_executor::PlannedLoop;
use rtpl_krylov::ExecutorKind;
use rtpl_sim::{self as sim, CostModel};

/// The candidate arms — [`ExecutorKind::ALL`], in its canonical order
/// (indices into every per-arm array). `Sequential` is a genuine
/// candidate: for small or serial patterns the model (correctly) predicts
/// that forking a team cannot pay for itself.
pub const ARMS: [ExecutorKind; 5] = ExecutorKind::ALL;

/// Index of `kind` in [`ARMS`].
pub fn arm_index(kind: ExecutorKind) -> usize {
    ARMS.iter()
        .position(|&k| k == kind)
        .expect("invariant: every ExecutorKind is an arm")
}

/// Explore any unmeasured arm whose predicted time is within this factor
/// of the best prediction; arms predicted far off the pace are never paid
/// for. `1.0` would trust the model blindly; larger values buy robustness
/// against model error with a bounded number of extra first runs.
const EXPLORE_FACTOR: f64 = 1.5;

/// Weight of a new observation against the running estimate (exponential
/// moving average, so drifting system load is tracked).
const EWMA_ALPHA: f64 = 0.3;

/// Every this many runs on a pattern, the selector spends at most one run
/// re-examining a non-incumbent arm whose confidence bound warrants it —
/// bounding re-exploration to ≤ 1 run in 64, and (with
/// [`CHALLENGE_CAP`]) its worst-case time cost to [`CHALLENGE_CAP`]/64 of
/// steady-state throughput.
const REEXPLORE_EVERY: u64 = 64;

/// An arm whose measured mean exceeds this multiple of the incumbent's is
/// never re-explored: a policy dethroned by *transient load* looks a few
/// times slower than the new incumbent and earns periodic challenges; a
/// policy that is catastrophically wrong for the pattern (e.g. doacross
/// at 100× on an oversubscribed host) stays retired no matter how stale
/// its estimate gets.
const CHALLENGE_CAP: f64 = 16.0;

/// Width of the confidence interval at full staleness: an arm unmeasured
/// for [`STALE_WINDOW`] runs has an optimistic lower bound of
/// `measured · (1 − UCB_WIDTH)`. At `1.0` a fully stale arm's bound
/// reaches zero, so it always qualifies for re-exploration; a freshly
/// measured arm's bound is its EWMA and it never does.
const UCB_WIDTH: f64 = 1.0;

/// Runs without an observation after which an arm's estimate counts as
/// fully stale (its confidence interval is at maximum width). A fixed
/// window — not a fraction of total history — so a dethroned arm's
/// chances do not decay as the pattern ages.
const STALE_WINDOW: u64 = 4 * REEXPLORE_EVERY;

/// Predicts per-policy execution times for planned loops under a cost
/// model.
#[derive(Clone, Debug)]
pub struct PolicySelector {
    cost: CostModel,
    /// Detected host parallelism, when known. The simulator's parallel-arm
    /// predictions assume every virtual processor runs simultaneously; on a
    /// host with fewer cores than a plan's processor count that assumption
    /// is not merely optimistic but inverted — spin-synchronizing executors
    /// burn the timeslice of the thread holding the value they wait for.
    /// Knowing the real core count lets `predict` retire those arms
    /// outright instead of letting measurement discover the cliff one slow
    /// run at a time.
    host_procs: Option<usize>,
}

impl PolicySelector {
    /// A selector predicting with `cost` (nanoseconds per operation when
    /// host-calibrated; any consistent unit otherwise). No host-core clamp
    /// is applied — predictions are the pure model.
    pub fn new(cost: CostModel) -> Self {
        PolicySelector {
            cost,
            host_procs: None,
        }
    }

    /// A selector that additionally knows the host's available core count
    /// (`None` disables the clamp, like [`PolicySelector::new`]). When a
    /// plan schedules `nprocs ≥ host_procs` virtual processors, every
    /// parallel arm is predicted `+∞` — oversubscribed spin-wait executors
    /// are dishonest bets, so the sequential arm is hard-preferred and the
    /// adaptive state never explores the cliff.
    pub fn with_host_procs(cost: CostModel, host_procs: Option<usize>) -> Self {
        PolicySelector { cost, host_procs }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The detected host core count the clamp uses, if any.
    pub fn host_procs(&self) -> Option<usize> {
        self.host_procs
    }

    /// Predicted time of every arm for one planned loop, indexed as
    /// [`ARMS`]. Weights are the row-substitution flop counts (1 + deps),
    /// matching how every table harness in the workspace weighs indices.
    /// `Doacross` is `+∞` for non-forward graphs (it cannot run there).
    pub fn predict(&self, plan: &PlannedLoop) -> [f64; 5] {
        let g = plan.graph();
        let s = plan.schedule();
        let weights: Vec<f64> = (0..g.n()).map(|i| 1.0 + g.deps(i).len() as f64).collect();
        let w = Some(&weights[..]);
        let mut out = [f64::INFINITY; 5];
        out[arm_index(ExecutorKind::Sequential)] = sim::sim_sequential(g.n(), w, &self.cost);
        // Host honesty: with the schedule's processor count at or above the
        // cores actually present, the parallel simulations model a machine
        // that does not exist — their results would be clamped to +∞
        // anyway, so don't run them at all (this sits on every
        // plan-acquisition path, cold inspection and store decode alike).
        // Hard-prefer the sequential arm.
        if let Some(cores) = self.host_procs {
            if s.nprocs() >= cores {
                return out;
            }
        }
        out[arm_index(ExecutorKind::SelfExecuting)] =
            sim::sim_self_executing(s, g, w, &self.cost).time;
        out[arm_index(ExecutorKind::PreScheduled)] = sim::sim_pre_scheduled(s, w, &self.cost).time;
        out[arm_index(ExecutorKind::PreScheduledElided)] =
            sim::sim_pre_scheduled_elided(s, plan.barrier_plan(), w, &self.cost).time;
        if g.is_forward() {
            out[arm_index(ExecutorKind::Doacross)] =
                sim::sim_doacross(g, s.nprocs(), w, &self.cost).time;
        }
        out
    }
}

/// Per-pattern explore/exploit state: model prior + measured wall times,
/// with UCB-style confidence bounds driving periodic re-exploration.
#[derive(Clone, Debug)]
pub struct AdaptiveState {
    prior: [f64; 5],
    measured: [f64; 5],
    count: [u64; 5],
    /// Total observations across all arms.
    total: u64,
    /// Value of `total` when each arm was last observed (its estimate's
    /// age drives the confidence width).
    last_obs: [u64; 5],
    /// Value of `total` at which the last re-exploration challenge was
    /// issued: each checkpoint hands out **one** challenger run even when
    /// many concurrent requests call [`AdaptiveState::choose`] between
    /// two observations.
    challenged_at: u64,
}

impl AdaptiveState {
    /// Starts from a model prediction per arm (`+∞` disables an arm).
    pub fn new(prior: [f64; 5]) -> Self {
        assert!(
            prior.iter().any(|p| p.is_finite()),
            "at least one arm must be feasible"
        );
        AdaptiveState {
            prior,
            measured: [0.0; 5],
            count: [0; 5],
            total: 0,
            last_obs: [0; 5],
            challenged_at: 0,
        }
    }

    /// Optimistic lower confidence bound of arm `k`: the EWMA estimate
    /// shrunk by a width that grows with how *stale* the estimate is
    /// (runs elapsed since the arm was last observed, saturating at
    /// [`STALE_WINDOW`]). UCB in spirit — uncertainty earns optimism — but driven by
    /// staleness rather than visit counts, because the enemy here is a
    /// measurement taken under load that has since passed, not an
    /// under-sampled mean.
    fn lower_bound(&self, k: usize) -> f64 {
        let staleness =
            ((self.total - self.last_obs[k]) as f64 / STALE_WINDOW as f64).clamp(0.0, 1.0);
        self.measured[k] * (1.0 - UCB_WIDTH * staleness.sqrt()).max(0.0)
    }

    /// The measured-best arm (the steady-state incumbent).
    fn incumbent(&self) -> Option<usize> {
        (0..ARMS.len())
            .filter(|&k| self.count[k] > 0)
            .min_by(|&a, &b| self.measured[a].total_cmp(&self.measured[b]))
    }

    /// The policy to use for the next run.
    ///
    /// Exploration phase: any arm never yet measured whose prior is within
    /// [`EXPLORE_FACTOR`] of the best prior gets one run (in prior order,
    /// best first). Steady state: the arm with the smallest **measured**
    /// mean — except that every [`REEXPLORE_EVERY`]-th run re-examines the
    /// non-incumbent arm with the lowest [confidence bound](Self::lower_bound),
    /// if that bound undercuts the incumbent's estimate **and** the arm's
    /// measured mean is within [`CHALLENGE_CAP`]× of the incumbent's (a
    /// catastrophically wrong policy is never re-paid, however stale its
    /// estimate). A policy dethroned by transient load goes stale, its
    /// bound decays toward zero, and it gets periodic chances to win back
    /// once the load passes — exactly one challenger run per checkpoint,
    /// even when concurrent requests race between two observations
    /// (`challenged_at` latches the checkpoint). Priors and measurements
    /// are never compared against each other — priors may be in abstract
    /// flop units while measurements are wall nanoseconds — so an arm
    /// pruned by the explore window is genuinely never paid for.
    /// Everything is deterministic: bookkeeping, not randomness.
    pub fn choose(&mut self) -> ExecutorKind {
        let best_prior = self.prior.iter().cloned().fold(f64::INFINITY, f64::min);
        let explore = (0..ARMS.len())
            .filter(|&k| self.count[k] == 0 && self.prior[k] <= best_prior * EXPLORE_FACTOR)
            .min_by(|&a, &b| self.prior[a].total_cmp(&self.prior[b]));
        if let Some(k) = explore {
            return ARMS[k];
        }
        // The exploration phase always measures at least one arm first.
        let best = self
            .incumbent()
            .expect("invariant: explore phase measured an arm");
        if self.total >= REEXPLORE_EVERY
            && self.total.is_multiple_of(REEXPLORE_EVERY)
            && self.challenged_at != self.total
        {
            let challenger = (0..ARMS.len())
                .filter(|&k| {
                    k != best
                        && self.count[k] > 0
                        && self.measured[k] <= CHALLENGE_CAP * self.measured[best]
                })
                .min_by(|&a, &b| self.lower_bound(a).total_cmp(&self.lower_bound(b)));
            if let Some(k) = challenger {
                if self.lower_bound(k) < self.measured[best] {
                    self.challenged_at = self.total;
                    return ARMS[k];
                }
            }
        }
        ARMS[best]
    }

    /// Folds one measured wall time (nanoseconds) into the arm's estimate.
    pub fn observe(&mut self, kind: ExecutorKind, wall_ns: f64) {
        let k = arm_index(kind);
        if self.count[k] == 0 {
            self.measured[k] = wall_ns;
        } else {
            self.measured[k] = (1.0 - EWMA_ALPHA) * self.measured[k] + EWMA_ALPHA * wall_ns;
        }
        self.count[k] += 1;
        self.total += 1;
        self.last_obs[k] = self.total;
    }

    /// Runs observed per arm, indexed as [`ARMS`].
    pub fn counts(&self) -> [u64; 5] {
        self.count
    }

    /// The model prior this state was built from, indexed as [`ARMS`].
    pub fn prior(&self) -> [f64; 5] {
        self.prior
    }

    /// The measured learning — per-arm EWMA estimates and observation
    /// counts — as plain arrays, for persistence. The prior is *not* part
    /// of the snapshot: it is a function of the plan and the host, and a
    /// restarted runtime recomputes it fresh (see [`AdaptiveState::resume`]).
    pub fn snapshot(&self) -> ([f64; 5], [u64; 5]) {
        (self.measured, self.count)
    }

    /// Rebuilds adaptive state from a freshly computed prior plus a
    /// persisted [`snapshot`](AdaptiveState::snapshot). Measurements for
    /// arms the *current* prior retires (`+∞` — e.g. the host-honesty
    /// clamp on a machine with fewer cores than the one that learned them)
    /// are discarded: a wall time measured on different hardware is not
    /// evidence here, and keeping it would let a retired arm win
    /// `choose()` through the measured path the prior can no longer guard.
    /// Surviving estimates enter at full staleness-freshness (`last_obs =
    /// total`), so the resumed state exploits immediately and re-explores
    /// on the usual schedule.
    pub fn resume(prior: [f64; 5], mut measured: [f64; 5], mut count: [u64; 5]) -> Self {
        assert!(
            prior.iter().any(|p| p.is_finite()),
            "at least one arm must be feasible"
        );
        for k in 0..ARMS.len() {
            if prior[k].is_infinite() {
                measured[k] = 0.0;
                count[k] = 0;
            }
        }
        let total: u64 = count.iter().sum();
        let mut last_obs = [0u64; 5];
        for k in 0..ARMS.len() {
            if count[k] > 0 {
                last_obs[k] = total;
            }
        }
        AdaptiveState {
            prior,
            measured,
            count,
            total,
            last_obs,
            challenged_at: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtpl_inspector::{DepGraph, Schedule, Wavefronts};
    use rtpl_sparse::gen::laplacian_5pt;

    fn mesh_plan(nx: usize, ny: usize, p: usize) -> PlannedLoop {
        let l = laplacian_5pt(nx, ny).strict_lower();
        let g = DepGraph::from_lower_triangular(&l).unwrap();
        let wf = Wavefronts::compute(&g).unwrap();
        PlannedLoop::new(g, Schedule::global(&wf, p).unwrap()).unwrap()
    }

    #[test]
    fn predictions_are_finite_positive_and_ordered_sanely() {
        let sel = PolicySelector::new(CostModel::multimax());
        let plan = mesh_plan(20, 20, 4);
        let pred = sel.predict(&plan);
        for (k, &t) in pred.iter().enumerate() {
            assert!(t.is_finite() && t > 0.0, "{:?}: {t}", ARMS[k]);
        }
        // Barrier elision can only help the barrier discipline.
        assert!(
            pred[arm_index(ExecutorKind::PreScheduledElided)]
                <= pred[arm_index(ExecutorKind::PreScheduled)]
        );
        // On a big wavefront-rich mesh under Multimax costs, the paper's
        // recommended self-executing discipline beats plain barriers.
        assert!(
            pred[arm_index(ExecutorKind::SelfExecuting)]
                < pred[arm_index(ExecutorKind::PreScheduled)]
        );
    }

    #[test]
    fn host_clamp_retires_parallel_arms_when_oversubscribed() {
        let cost = CostModel::multimax();
        // Plan wants 4 virtual processors; host has only 2 cores.
        let plan = mesh_plan(20, 20, 4);
        let clamped = PolicySelector::with_host_procs(cost, Some(2)).predict(&plan);
        let seq = arm_index(ExecutorKind::Sequential);
        for (i, &t) in clamped.iter().enumerate() {
            if i == seq {
                assert!(t.is_finite() && t > 0.0);
            } else {
                assert!(t.is_infinite(), "{:?} must be retired", ARMS[i]);
            }
        }
        // The clamped prior still satisfies AdaptiveState's invariant and
        // deterministically selects the sequential arm.
        let mut st = AdaptiveState::new(clamped);
        assert_eq!(st.choose(), ExecutorKind::Sequential);
        // Plenty of cores: predictions match the unclamped model exactly.
        let free = PolicySelector::with_host_procs(cost, Some(16)).predict(&plan);
        assert_eq!(free, PolicySelector::new(cost).predict(&plan));
        // `None` disables the clamp too.
        assert_eq!(
            PolicySelector::with_host_procs(cost, None).predict(&plan),
            PolicySelector::new(cost).predict(&plan)
        );
    }

    #[test]
    fn first_choice_is_best_prior_then_measurements_take_over() {
        let mut st = AdaptiveState::new([100.0, 40.0, 90.0, 80.0, 50.0]);
        // Exploration: best prior first (SelfExecuting, index 1)...
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
        st.observe(ExecutorKind::SelfExecuting, 55.0);
        // ...then the remaining unmeasured near-best arm (Doacross, 50 ≤ 1.5·40).
        assert_eq!(st.choose(), ExecutorKind::Doacross);
        st.observe(ExecutorKind::Doacross, 70.0);
        // Steady state: measured SelfExecuting (55) beats measured
        // Doacross (70); unmeasured arms no longer compete.
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
        // A drifting system can flip the choice.
        for _ in 0..20 {
            st.observe(ExecutorKind::SelfExecuting, 200.0);
        }
        assert_eq!(st.choose(), ExecutorKind::Doacross);
    }

    #[test]
    fn infinite_prior_disables_an_arm() {
        let mut st = AdaptiveState::new([10.0, f64::INFINITY, f64::INFINITY, f64::INFINITY, 11.0]);
        assert_eq!(st.choose(), ExecutorKind::Sequential);
        let counts = st.counts();
        assert_eq!(counts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn far_off_priors_are_never_explored() {
        let mut st = AdaptiveState::new([1000.0, 10.0, 1000.0, 1000.0, 1000.0]);
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
        st.observe(ExecutorKind::SelfExecuting, 12.0);
        // No other arm is within the explore window: exploit immediately.
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
    }

    /// Drives the selector closed-loop (choose → observe) with a fixed
    /// per-arm cost model. Returns how often each arm ran.
    fn drive(st: &mut AdaptiveState, steps: usize, cost: impl Fn(ExecutorKind) -> f64) -> [u64; 5] {
        let mut runs = [0u64; 5];
        for _ in 0..steps {
            let k = st.choose();
            runs[arm_index(k)] += 1;
            st.observe(k, cost(k));
        }
        runs
    }

    #[test]
    fn periodic_reexploration_revives_a_dethroned_arm() {
        // Two feasible arms; Sequential is genuinely the faster one.
        let mut st = AdaptiveState::new([10.0, 12.0, f64::INFINITY, f64::INFINITY, f64::INFINITY]);
        assert_eq!(st.choose(), ExecutorKind::Sequential);
        st.observe(ExecutorKind::Sequential, 50.0);
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
        st.observe(ExecutorKind::SelfExecuting, 60.0);
        assert_eq!(st.choose(), ExecutorKind::Sequential, "steady state");
        // Transient load: Sequential measures terribly and is dethroned.
        for _ in 0..10 {
            st.observe(ExecutorKind::Sequential, 500.0);
        }
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting, "dethroned");
        // The load passes. Without re-exploration the selector would run
        // SelfExecuting forever — Sequential's stale 500 ns estimate never
        // gets another sample. The periodic UCB challenge fixes that: the
        // stale arm's confidence bound decays, it earns one run per
        // checkpoint, its EWMA folds in healthy samples, and it wins back.
        let runs = drive(&mut st, 2000, |k| {
            if k == ExecutorKind::Sequential {
                50.0
            } else {
                60.0
            }
        });
        assert!(
            runs[arm_index(ExecutorKind::Sequential)] >= 5,
            "stale arm was never re-explored: {runs:?}"
        );
        assert_eq!(
            st.choose(),
            ExecutorKind::Sequential,
            "dethroned arm must win back once its fresh samples dominate"
        );
        // Re-exploration is bounded: once Sequential is incumbent again,
        // SelfExecuting only ever runs at checkpoints.
        let tail = drive(&mut st, 640, |k| {
            if k == ExecutorKind::Sequential {
                50.0
            } else {
                60.0
            }
        });
        assert!(
            tail[arm_index(ExecutorKind::SelfExecuting)] <= 640 / REEXPLORE_EVERY,
            "re-exploration must stay periodic: {tail:?}"
        );
    }

    #[test]
    fn fresh_arms_are_not_reexplored_at_checkpoints() {
        let mut st = AdaptiveState::new([10.0, 11.0, f64::INFINITY, f64::INFINITY, f64::INFINITY]);
        st.observe(ExecutorKind::Sequential, 50.0);
        st.observe(ExecutorKind::SelfExecuting, 60.0);
        // Keep *both* estimates fresh by hand while walking exactly onto a
        // checkpoint: the challenger's bound is its (worse) EWMA, so the
        // incumbent keeps the slot.
        while !(st.total + 2).is_multiple_of(REEXPLORE_EVERY) {
            st.observe(ExecutorKind::Sequential, 50.0);
        }
        st.observe(ExecutorKind::SelfExecuting, 60.0);
        st.observe(ExecutorKind::Sequential, 50.0);
        assert_eq!(st.total % REEXPLORE_EVERY, 0);
        assert_eq!(
            st.choose(),
            ExecutorKind::Sequential,
            "a fresh, slower arm earns no optimism"
        );
    }

    #[test]
    fn checkpoint_issues_exactly_one_challenge() {
        // Walk onto a checkpoint with a stale, dethroned arm…
        let mut st = AdaptiveState::new([10.0, 12.0, f64::INFINITY, f64::INFINITY, f64::INFINITY]);
        st.observe(ExecutorKind::Sequential, 50.0);
        st.observe(ExecutorKind::SelfExecuting, 60.0);
        for _ in 0..10 {
            st.observe(ExecutorKind::Sequential, 500.0);
        }
        // Pad with incumbent observations until a checkpoint at which the
        // dethroned arm is stale enough for its bound to undercut.
        while st.total < STALE_WINDOW {
            st.observe(ExecutorKind::SelfExecuting, 60.0);
        }
        assert!(st.total.is_multiple_of(REEXPLORE_EVERY));
        // …then model concurrent requests: several choose() calls land
        // between two observations. Only the first gets the challenger;
        // the burst runs the incumbent.
        assert_eq!(st.choose(), ExecutorKind::Sequential, "one challenge");
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
        assert_eq!(st.choose(), ExecutorKind::SelfExecuting);
    }

    #[test]
    fn catastrophically_slow_arms_are_never_rechallenged() {
        // SelfExecuting measures 100× worse than the incumbent — far past
        // CHALLENGE_CAP — so no amount of staleness re-buys it.
        let mut st = AdaptiveState::new([10.0, 12.0, f64::INFINITY, f64::INFINITY, f64::INFINITY]);
        st.observe(ExecutorKind::Sequential, 50.0);
        st.observe(ExecutorKind::SelfExecuting, 5000.0);
        let runs = drive(&mut st, 1000, |k| {
            if k == ExecutorKind::Sequential {
                50.0
            } else {
                5000.0
            }
        });
        assert_eq!(
            runs[arm_index(ExecutorKind::SelfExecuting)],
            0,
            "an arm {CHALLENGE_CAP}x+ off the pace must stay retired: {runs:?}"
        );
    }

    #[test]
    fn resume_restores_learning_and_honors_the_current_host() {
        let prior = [100.0, 40.0, 90.0, 80.0, 50.0];
        let mut st = AdaptiveState::new(prior);
        st.observe(ExecutorKind::SelfExecuting, 55.0);
        st.observe(ExecutorKind::Doacross, 70.0);
        let (measured, count) = st.snapshot();
        // Same host: the learned incumbent carries over — no exploration
        // replays, the first post-restart choice exploits immediately.
        let mut resumed = AdaptiveState::resume(prior, measured, count);
        assert_eq!(resumed.choose(), ExecutorKind::SelfExecuting);
        assert_eq!(resumed.counts(), count);
        // Shrunken host: the current prior retires every parallel arm, so
        // their persisted measurements are discarded wholesale — the state
        // behaves as fresh and deterministically picks the sequential arm.
        let clamped = [
            10.0,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
        ];
        let mut small = AdaptiveState::resume(clamped, measured, count);
        assert_eq!(small.choose(), ExecutorKind::Sequential);
        assert_eq!(small.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn reexploration_is_deterministic() {
        let run = || {
            let mut st = AdaptiveState::new([10.0, 12.0, 14.0, f64::INFINITY, f64::INFINITY]);
            let mut trace = Vec::new();
            for step in 0..500u64 {
                let k = st.choose();
                trace.push(k);
                // A load spike between runs 100 and 200 penalizes whatever
                // runs during it.
                let spike = (100..200).contains(&step);
                st.observe(
                    k,
                    40.0 + arm_index(k) as f64 + if spike { 400.0 } else { 0.0 },
                );
            }
            trace
        };
        assert_eq!(run(), run(), "no wall-clock or randomness in the loop");
    }
}
