//! The solver service in action: one `Runtime`, many requests, plans
//! remembered across them and the executor discipline chosen by the cost
//! model instead of by hand.
//!
//! ```sh
//! cargo run --release --example plan_cache
//! ```

use rtpl::krylov::cg;
use rtpl::krylov::KrylovConfig;
use rtpl::prelude::*;
use rtpl::runtime::{Runtime, RuntimeConfig};
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::ilu0;
use std::time::Instant;

fn main() {
    // One runtime for the whole process: it calibrates the §5.1.2 cost
    // model on this host once, then serves every client thread.
    let rt = Runtime::new(RuntimeConfig::default());
    let c = rt.cost_model();
    println!(
        "runtime up: {} procs/plan, calibrated Tp {:.2} ns, Tsynch {:.1} ns\n",
        rt.config().nprocs,
        c.tp,
        c.tsynch
    );

    // --- Request 1: a pattern the service has never seen -----------------
    let a = laplacian_5pt(40, 40);
    let f = ilu0(&a).unwrap();
    let n = f.n();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.05).sin()).collect();
    let mut x = vec![0.0; n];

    let t = Instant::now();
    let cold = rt.solve(&f, &b, &mut x).unwrap();
    println!(
        "cold solve: {:>8} us  (inspected both sweeps, built the plan, predicted \n\
         every policy's cost, ran {:?})",
        t.elapsed().as_micros(),
        cold.policy
    );

    // --- Requests 2..N: same structure, any values, any thread ----------
    let t = Instant::now();
    const WARM: usize = 50;
    let mut last = cold;
    for _ in 0..WARM {
        last = rt.solve(&f, &b, &mut x).unwrap();
        assert!(last.cached);
    }
    println!(
        "warm solves: {:>7} us for {WARM} requests ({} us each, policy {:?})",
        t.elapsed().as_micros(),
        t.elapsed().as_micros() / WARM as u128,
        last.policy
    );

    // Refactorized values on the same pattern still hit the cache.
    let mut a2 = a.clone();
    for v in a2.data_mut().iter_mut() {
        *v *= 1.5;
    }
    let f2 = ilu0(&a2).unwrap();
    let again = rt.solve(&f2, &b, &mut x).unwrap();
    println!(
        "new values, same pattern: cached = {} (no re-inspection)\n",
        again.cached
    );

    // --- A whole Krylov solve through the cache --------------------------
    // The preconditioner adapter routes every ILU application through the
    // runtime: the first application builds, the rest of the solve hits.
    let pool = WorkerPool::new(rt.config().nprocs);
    let m = rt.preconditioner(&f);
    let mut sol = vec![0.0; n];
    let stats = cg(&pool, &a, &b, &mut sol, &m, &KrylovConfig::default()).unwrap();
    println!(
        "cg with cached ILU: converged = {} in {} iterations",
        stats.converged, stats.iterations
    );

    let s = rt.stats();
    println!(
        "\nservice stats: {} requests, hit rate {:.3}, {} plan builds, \n\
         {} evictions, dominant policy {:?}, {} worker pools",
        s.solves.hits + s.solves.misses,
        s.solves.hit_rate(),
        s.solves.builds,
        s.solves.evictions,
        s.dominant_policy(),
        s.pools_created
    );
    assert_eq!(s.solves.builds, 1, "one structure, one inspection — ever");
}
