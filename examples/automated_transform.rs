//! The §2.2 automated transformation, end to end.
//!
//! A parallelizing compiler sees the annotated source
//!
//! ```text
//! doconsider i = 1, n
//!     x(i) = x(i) + b(i) * x(ia(i))
//! enddo
//! ```
//!
//! and emits (1) a run-time dependence analysis + scheduler and (2) a
//! transformed executor loop. `rtpl::transform` plays the compiler: the
//! body is described as a tiny stack program over named arrays, `compile`
//! validates it and extracts the dependences symbolically, and `run`
//! schedules + executes it.
//!
//! Run with: `cargo run --release --example automated_transform`

use rtpl::transform::{compile, Env, ExecChoice, LoopSpec, Op};
use rtpl::{executor::WorkerPool, Scheduling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64usize;
    // Run-time data: a dependence pattern unknown to any static analysis.
    let ia: Vec<usize> = (0..n)
        .map(|i| {
            if i % 5 == 0 {
                (i + 11) % n
            } else {
                (i * 7) % i.max(1)
            }
        })
        .collect();
    let b: Vec<f64> = (0..n).map(|i| 0.3 + 0.01 * i as f64).collect();
    let xold: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();

    // --- what the compiler emits from the annotated loop ------------------
    let spec = LoopSpec {
        n,
        // x(i) = xold(i) + b(i) * x(ia(i))
        ops: vec![
            Op::PushData("x0"),
            Op::PushData("b"),
            Op::PushX("ia"),
            Op::Mul,
            Op::Add,
        ],
    };
    let mut env = Env {
        xold: xold.clone(),
        ..Default::default()
    };
    env.data.insert("b", b.clone());
    env.data.insert("x0", xold.clone());
    env.index_arrays.insert("ia", ia.clone());

    // --- compile-time steps 1-3: validate, extract dependences ------------
    let compiled = compile(spec, env)?;
    println!(
        "compiled: {} indices, {} dependence edges, {} wavefronts",
        n,
        compiled.graph().num_edges(),
        compiled.num_wavefronts()
    );

    // --- run-time steps 4-5: schedule and execute --------------------------
    let pool = WorkerPool::new(4);
    let x_seq = compiled.run(&pool, Scheduling::Global, ExecChoice::Sequential)?;
    for (strategy, exec) in [
        (Scheduling::Global, ExecChoice::SelfExecuting),
        (Scheduling::LocalStriped, ExecChoice::SelfExecuting),
        (Scheduling::Global, ExecChoice::PreScheduled),
    ] {
        let x = compiled.run(&pool, strategy, exec)?;
        assert_eq!(x, x_seq, "{strategy:?}/{exec:?}");
        println!("{strategy:?} + {exec:?}: matches sequential");
    }
    println!("x[0..6] = {:?}", &x_seq[..6]);
    Ok(())
}
