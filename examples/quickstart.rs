//! Quickstart: parallelize the paper's Figure 2 loop.
//!
//! ```text
//! do i = 1, n
//!     x(i) = x(i) + b(i) * x(ia(i))
//! end do
//! ```
//!
//! The dependences run through the run-time index array `ia`, so no
//! compiler can schedule this statically. The `doconsider` pipeline
//! inspects `ia`, sorts indices into wavefronts, and executes the loop with
//! busy-wait (self-executing) synchronization.
//!
//! Run with: `cargo run --release --example quickstart`

use rtpl::prelude::*;

fn main() -> Result<(), rtpl::inspector::InspectorError> {
    let n = 24usize;
    // A run-time dependence pattern: each index reads one earlier index
    // (flow dependence) or a later/equal one (reads the *old* value, no
    // ordering needed — Figure 4's `needed_index >= isched` branch).
    let ia: Vec<usize> = (0..n)
        .map(|i| if i % 3 == 0 { (i + 5) % n } else { i / 2 })
        .collect();
    let b = vec![0.5f64; n];
    let xold: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();

    // --- Inspector -------------------------------------------------------
    let inspector = DoConsider::from_index_array(&ia)?;
    println!(
        "loop of {n} indices, {} wavefronts",
        inspector.num_wavefronts()
    );
    println!("wavefront histogram: {:?}", inspector.wavefronts().counts());

    // --- Schedule (global sort, 4 processors) -----------------------------
    let nprocs = 4;
    let plan = inspector.schedule(Scheduling::Global, nprocs)?;

    // --- Executor (self-executing, Figure 4) ------------------------------
    let pool = WorkerPool::new(nprocs);
    let mut x = vec![0.0f64; n];
    let body = |i: usize, src: &dyn ValueSource| {
        let t = ia[i];
        let operand = if t >= i { xold[t] } else { src.get(t) };
        xold[i] + b[i] * operand
    };
    let stats = plan.run_self_executing(&pool, &body, &mut x);
    println!("self-executing run: {} busy-wait stalls", stats.stalls);

    // --- Check against the sequential loop --------------------------------
    let mut expect = xold.clone();
    for i in 0..n {
        let operand = if ia[i] >= i { xold[ia[i]] } else { expect[ia[i]] };
        expect[i] = xold[i] + b[i] * operand;
    }
    assert_eq!(x, expect, "parallel result must match the sequential loop");
    println!("x[0..8] = {:?}", &x[..8]);
    println!("OK: matches sequential execution.");
    Ok(())
}
