//! Quickstart: parallelize the paper's Figure 2 loop.
//!
//! ```text
//! do i = 1, n
//!     x(i) = x(i) + b(i) * x(ia(i))
//! end do
//! ```
//!
//! The dependences run through the run-time index array `ia`, so no
//! compiler can schedule this statically. The `doconsider` pipeline
//! inspects `ia`, sorts indices into wavefronts, and builds a
//! [`PlannedLoop`] — planned once, then executable under **any**
//! synchronization discipline through the single generic entry point
//! `plan.run(&pool, policy, &body, &mut x)`.
//!
//! Run with: `cargo run --release --example quickstart`

use rtpl::prelude::*;

/// The Figure 2 loop body. Implementing [`LoopBody`] (rather than passing a
/// closure) lets the *same* body run under every [`ExecPolicy`] with full
/// static dispatch — the executor monomorphizes `eval` against its own
/// value source.
struct Figure2<'a> {
    ia: &'a [usize],
    b: &'a [f64],
    xold: &'a [f64],
}

impl LoopBody for Figure2<'_> {
    fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
        let t = self.ia[i];
        // A later/equal index reads the *old* value (no ordering needed —
        // Figure 4's `needed_index >= isched` branch); an earlier index is
        // a flow dependence read through the synchronized source.
        let operand = if t >= i { self.xold[t] } else { src.get(t) };
        self.xold[i] + self.b[i] * operand
    }
}

fn main() -> Result<(), rtpl::inspector::InspectorError> {
    let n = 24usize;
    // A run-time dependence pattern.
    let ia: Vec<usize> = (0..n)
        .map(|i| if i % 3 == 0 { (i + 5) % n } else { i / 2 })
        .collect();
    let b = vec![0.5f64; n];
    let xold: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    let body = Figure2 {
        ia: &ia,
        b: &b,
        xold: &xold,
    };

    // --- Inspector (runs once) -------------------------------------------
    let inspector = DoConsider::from_index_array(&ia)?;
    println!(
        "loop of {n} indices, {} wavefronts",
        inspector.num_wavefronts()
    );
    println!("wavefront histogram: {:?}", inspector.wavefronts().counts());

    // --- Plan (global sort, 4 processors; owns schedule + buffers) --------
    let nprocs = 4;
    let plan = inspector.schedule(Scheduling::Global, nprocs)?;

    // --- Execute: one plan, every discipline ------------------------------
    let pool = WorkerPool::new(nprocs);
    let mut expect = xold.clone();
    for i in 0..n {
        let operand = if ia[i] >= i {
            xold[ia[i]]
        } else {
            expect[ia[i]]
        };
        expect[i] = xold[i] + b[i] * operand;
    }
    for policy in ExecPolicy::ALL {
        let mut x = vec![0.0f64; n];
        let report = plan.run(&pool, policy, &body, &mut x);
        assert_eq!(x, expect, "{policy:?} must match the sequential loop");
        println!(
            "{policy:?}: {} barriers, {} stalls, load {:?}",
            report.barriers, report.stalls, report.iters_per_proc
        );
    }
    println!("x[0..8] = {:?}", &expect[..8]);
    println!("OK: all four policies match sequential execution.");
    Ok(())
}
