//! The batched `Job` front door: one `Runtime`, one mixed batch of
//! triangular solves and `DoConsider`-derived loop jobs.
//!
//! ```sh
//! cargo run --release --example batched_service
//! ```
//!
//! Builds a Zipf-mixed batch (hot patterns repeated, a long tail of rare
//! ones), submits it twice through `Runtime::submit_batch`, and prints the
//! `BatchOutcome` accounting: groups formed, cold inspections, wall time,
//! requests/sec — and how the second (fully warm) batch compares.

use rtpl::runtime::{BatchOutcome, Job, Runtime, RuntimeConfig};
use rtpl::sparse::ilu::IluFactors;
use rtpl::sparse::Csr;
use rtpl::workload::{pattern_set, RequestKind, ZipfMix};
use rtpl::DoConsider;

fn factors_from_pattern(m: &Csr) -> IluFactors {
    IluFactors {
        l: m.strict_lower(),
        u: m.transpose().upper(),
    }
}

fn report(label: &str, outcome: &BatchOutcome) {
    println!(
        "{label}: {} jobs ({} ok) in {:.2} ms  ->  {:>8.0} req/s   \
         groups {} (cold {})  workers {}",
        outcome.jobs.len(),
        outcome.ok_count(),
        outcome.wall.as_secs_f64() * 1e3,
        outcome.requests_per_sec(),
        outcome.groups,
        outcome.cold_groups,
        outcome.workers,
    );
    let cached = outcome
        .jobs
        .iter()
        .filter(|j| j.as_ref().is_ok_and(|o| o.cached()))
        .count();
    println!("         cached outcomes: {cached}/{}", outcome.jobs.len());
}

fn main() {
    const SOLVE_PATTERNS: usize = 8;
    const LOOP_PATTERNS: usize = 4;
    const REQUESTS: usize = 192;

    // Distinct solve structures (as ILU-shaped factor pairs) and distinct
    // loop structures (as cacheable DoConsider specs).
    let solve_mats = pattern_set(SOLVE_PATTERNS, 20, 42);
    let factors: Vec<IluFactors> = solve_mats.iter().map(factors_from_pattern).collect();
    let lowers: Vec<Csr> = pattern_set(LOOP_PATTERNS, 18, 77)
        .iter()
        .map(|m| m.strict_lower())
        .collect();
    let specs: Vec<_> = lowers
        .iter()
        .map(|l| DoConsider::from_lower_triangular(l).unwrap().into_spec())
        .collect();
    let ns = factors[0].n();
    let nl = lowers[0].nrows();

    // A Zipf-mixed request stream: 70% solves, 30% loops, hot ranks first.
    let mix = ZipfMix::new(SOLVE_PATTERNS.max(LOOP_PATTERNS), 1.1);
    let stream: Vec<(RequestKind, usize)> = mix
        .mixed_stream(REQUESTS, 0.3, 9)
        .into_iter()
        .map(|r| match r.kind {
            RequestKind::Solve => (r.kind, r.rank % SOLVE_PATTERNS),
            RequestKind::Loop => (r.kind, r.rank % LOOP_PATTERNS),
        })
        .collect();
    let solve_bs: Vec<Vec<f64>> = (0..SOLVE_PATTERNS)
        .map(|i| {
            (0..ns)
                .map(|k| 1.0 + ((k + i) as f64 * 0.11).sin())
                .collect()
        })
        .collect();
    let loop_bs: Vec<Vec<f64>> = (0..LOOP_PATTERNS)
        .map(|i| {
            (0..nl)
                .map(|k| 1.0 + ((k + i) as f64 * 0.07).cos())
                .collect()
        })
        .collect();

    let rt = Runtime::new(RuntimeConfig::default());
    println!(
        "runtime: nprocs {}, batch workers auto\n",
        rt.config().nprocs
    );

    for round in ["cold batch", "warm batch"] {
        let mut outs: Vec<Vec<f64>> = stream
            .iter()
            .map(|&(kind, _)| vec![0.0; if kind == RequestKind::Solve { ns } else { nl }])
            .collect();
        let jobs: Vec<Job> = stream
            .iter()
            .zip(outs.iter_mut())
            .map(|(&(kind, rank), out)| match kind {
                RequestKind::Solve => Job::solve(&factors[rank], &solve_bs[rank], out),
                RequestKind::Loop => {
                    Job::linear(&specs[rank], lowers[rank].data(), &loop_bs[rank], out)
                }
            })
            .collect();
        let outcome = rt.submit_batch(jobs);
        report(round, &outcome);
    }

    let stats = rt.stats();
    println!(
        "\nservice counters: solve builds {}, linear-loop builds {}, \
         batches {}, batch jobs {}, dominant policy {:?}",
        stats.solves.builds,
        stats.linears.builds,
        stats.batches,
        stats.batch_jobs,
        stats.dominant_policy(),
    );
}
