//! Reproduces the paper's Figures 9–11: wavefront structure of the 5×7
//! model problem.
//!
//! Figure 9 assigns each mesh point to a wavefront (the anti-diagonals);
//! Figure 10 deals the wavefront-sorted list to processors in a wrapped
//! fashion; Figure 11 shows the dependences between adjacent strips.
//!
//! Run with: `cargo run --release --example wavefronts`

use rtpl::prelude::*;
use rtpl::sparse::gen::laplacian_5pt;

fn main() -> Result<(), rtpl::inspector::InspectorError> {
    let (nx, ny) = (5usize, 7usize);
    let a = laplacian_5pt(nx, ny);
    let g = DepGraph::from_lower_triangular(&a.strict_lower())?;
    let wf = Wavefronts::compute(&g)?;

    println!("== Figure 9: wavefront of each mesh point (natural order) ==");
    for y in (0..ny).rev() {
        for x in 0..nx {
            print!("{:>4}", wf.of(y * nx + x));
        }
        println!();
    }
    println!(
        "\nsorted list L (1-based, as in the paper): {:?}",
        wf.sorted_list().iter().map(|&i| i + 1).collect::<Vec<_>>()
    );

    let p = 4;
    let schedule = Schedule::global(&wf, p)?;
    println!("\n== Figure 10: wrapped assignment of L to {p} processors ==");
    for y in (0..ny).rev() {
        for x in 0..nx {
            print!("{:>4}", schedule.owners()[y * nx + x]);
        }
        println!();
    }
    for q in 0..p {
        println!(
            "processor {q}: {:?}",
            schedule.proc(q).iter().map(|&i| i + 1).collect::<Vec<_>>()
        );
    }

    println!("\n== Figure 11: dependences of the middle column of points ==");
    let x = nx / 2;
    for y in 0..ny {
        let i = y * nx + x;
        println!(
            "point ({x},{y}) index {:>2} wf {:>2} <- deps {:?}",
            i + 1,
            wf.of(i),
            g.deps(i).iter().map(|&d| d + 1).collect::<Vec<_>>()
        );
    }

    println!(
        "\n{} wavefronts over {} indices; per-wavefront counts {:?}",
        wf.num_wavefronts(),
        nx * ny,
        wf.counts()
    );
    Ok(())
}
