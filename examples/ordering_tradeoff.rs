//! Ordering vs run-time parallelism — the tradeoff behind the paper's
//! related work on reordering triangular solves.
//!
//! The unknown ordering decides the dependence DAG of the incomplete
//! factor, hence the wavefront structure the inspector finds:
//!
//! * **natural** ordering: anti-diagonal wavefronts (`nx + ny − 1` phases);
//! * **reverse Cuthill–McKee**: minimizes bandwidth (good for cache /
//!   fill), keeps chains long;
//! * **red–black**: two colors, two-ish wavefronts — maximal parallelism,
//!   but a weaker ILU(0) preconditioner (more Krylov iterations).
//!
//! Run with: `cargo run --release --example ordering_tradeoff`

use rtpl::executor::WorkerPool;
use rtpl::inspector::{DepGraph, Schedule, Wavefronts};
use rtpl::krylov::{
    gmres, ExecutorKind, KrylovConfig, Preconditioner, Sorting, TriangularSolvePlan,
};
use rtpl::sim::{self, CostModel};
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::ordering::{bandwidth, red_black, reverse_cuthill_mckee, Permutation};
use rtpl::sparse::{ilu0, Csr};

fn analyze(label: &str, a: &Csr) {
    let n = a.nrows();
    let f = ilu0(a).expect("ilu0");
    let g = DepGraph::from_lower_triangular(&f.l).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let p = 16;
    let s = Schedule::global(&wf, p).unwrap();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + f.l.row_nnz(i) as f64).collect();
    let zero = CostModel::zero_overhead();
    let seq = sim::sim_sequential(n, Some(&weights), &zero);
    let e_se = sim::sim_self_executing(&s, &g, Some(&weights), &zero).efficiency(seq);
    let e_ps = sim::sim_pre_scheduled(&s, Some(&weights), &zero).efficiency(seq);

    // Preconditioner quality: GMRES iterations on a fixed right-hand side.
    let pool = WorkerPool::new(2);
    let plan =
        TriangularSolvePlan::new(&f, 2, ExecutorKind::SelfExecuting, Sorting::Global).unwrap();
    let m = Preconditioner::Ilu(plan);
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.03).sin()).collect();
    let mut x = vec![0.0; n];
    let stats = gmres(
        &pool,
        a,
        &b,
        &mut x,
        &m,
        &KrylovConfig {
            tol: 1e-9,
            max_iter: 500,
            restart: 30,
        },
    )
    .unwrap();

    println!(
        "{label:<12} bandwidth {:>4}  phases {:>3}  E(self-exec) {:.3}  E(pre-sched) {:.3}  GMRES iters {:>3}{}",
        bandwidth(a),
        wf.num_wavefronts(),
        e_se,
        e_ps,
        stats.iterations,
        if stats.converged { "" } else { "  (!)" }
    );
}

fn main() {
    let (nx, ny) = (32usize, 32usize);
    let a = laplacian_5pt(nx, ny);
    println!("ordering tradeoff on a {nx}x{ny} 5-pt Laplacian (16 simulated processors)\n");

    analyze("natural", &a);

    let rcm: Permutation = reverse_cuthill_mckee(&a).unwrap();
    analyze("RCM", &rcm.apply_symmetric(&a).unwrap());

    let rb = red_black(nx, ny);
    analyze("red-black", &rb.apply_symmetric(&a).unwrap());

    println!(
        "\nReading: red-black collapses the factor's dependence chains (few phases,\n\
         near-perfect pre-scheduled balance) but weakens ILU(0), costing Krylov\n\
         iterations; natural/RCM orderings precondition better but leave long\n\
         wavefront chains — exactly the gap the paper's self-executing schedules\n\
         exploit at run time."
    );
}
