//! The synthetic workload generator of §4.1 under both executors.
//!
//! Generates the paper's `65-4-3` matrix (65×65 mesh, Poisson mean degree
//! 4, geometric mean link distance 3), inspects it, and sweeps the
//! simulated processor count for pre-scheduled vs self-executing runs —
//! a miniature of the Figure 12/13 experiment on synthetic data.
//!
//! Run with: `cargo run --release --example synthetic_workload`

use rtpl::prelude::*;
use rtpl::sim::{self, CostModel};
use rtpl::workload::SyntheticSpec;

fn main() -> Result<(), rtpl::inspector::InspectorError> {
    let spec = SyntheticSpec {
        mesh: 65,
        mean_degree: 4.0,
        mean_distance: 3.0,
    };
    println!("synthetic workload {}", spec.name());
    let m = spec.generate(0xC0FFEE);
    let l = m.strict_lower();
    let n = l.nrows();
    println!("n = {n}, dependence edges = {}", l.nnz());

    let g = DepGraph::from_lower_triangular(&l)?;
    let wf = Wavefronts::compute(&g)?;
    println!("wavefronts: {}", wf.num_wavefronts());
    let counts = wf.counts();
    let widest = counts.iter().copied().max().unwrap_or(0);
    println!("widest wavefront: {widest} indices");

    // Verify a parallel run agrees with the sequential loop on 3 threads.
    struct DepSum<'a>(&'a DepGraph);
    impl LoopBody for DepSum<'_> {
        fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
            1.0 + self
                .0
                .deps(i)
                .iter()
                .map(|&d| 0.3 * src.get(d as usize))
                .sum::<f64>()
        }
    }
    let nprocs = 3;
    let pool = WorkerPool::new(nprocs);
    let schedule = Schedule::global(&wf, nprocs)?;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + g.deps(i).len() as f64).collect();
    let plan = PlannedLoop::new(g.clone(), schedule)?;
    let mut out_par = vec![0.0; n];
    plan.run(&pool, ExecPolicy::SelfExecuting, &DepSum(&g), &mut out_par);
    let mut out_seq = vec![0.0; n];
    plan.run_sequential(&DepSum(&g), &mut out_seq);
    assert_eq!(out_par, out_seq);
    println!("3-thread self-executing run matches sequential.\n");

    // Simulated efficiency sweep (the paper's machine sizes).
    let cost = CostModel::multimax();
    let seq = sim::sim_sequential(n, Some(&weights), &cost);
    println!("p   E(self-exec)  E(pre-sched)  E(doacross)");
    for p in [2, 4, 8, 16, 32] {
        let s = Schedule::global(&wf, p)?;
        let se = sim::sim_self_executing(&s, &g, Some(&weights), &cost);
        let ps = sim::sim_pre_scheduled(&s, Some(&weights), &cost);
        let da = sim::sim_doacross(&g, p, Some(&weights), &cost);
        println!(
            "{p:<4}{:>10.3}{:>14.3}{:>13.3}",
            se.efficiency(seq),
            ps.efficiency(seq),
            da.efficiency(seq)
        );
    }
    Ok(())
}
