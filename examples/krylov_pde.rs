//! Full preconditioned Krylov solve — the PCGPAK workflow of Appendix II.
//!
//! Solves the 5-PT convection–diffusion problem with restarted GMRES
//! preconditioned by ILU(0), with every kernel parallelized:
//! matvec/SAXPY/dots over contiguous blocks, the ILU numeric factorization
//! and both triangular sweeps through the inspector/executor.
//!
//! Run with: `cargo run --release --example krylov_pde`

use rtpl::krylov::factor::{parallel_iluk, FactorSync};
use rtpl::krylov::{
    gmres, ExecutorKind, KrylovConfig, Preconditioner, Sorting, TriangularSolvePlan,
};
use rtpl::prelude::*;
use rtpl::workload::{ProblemId, TestProblem};
use std::time::Instant;

fn main() {
    let problem = TestProblem::build(ProblemId::FivePt);
    let a = &problem.matrix;
    let n = a.nrows();
    println!("problem {}: n = {n}, nnz = {}", problem.name, a.nnz());

    let nprocs = std::thread::available_parallelism().map_or(2, |c| c.get().min(4));
    let pool = WorkerPool::new(nprocs);

    // Parallel numeric factorization (row-granularity self-execution).
    let t0 = Instant::now();
    let f = parallel_iluk(&pool, a, 0, FactorSync::SelfExecuting).expect("parallel ILU");
    println!(
        "parallel ILU(0) numeric factorization: {:.1} ms ({} workers)",
        t0.elapsed().as_secs_f64() * 1e3,
        nprocs
    );

    // Inspector once, reused every iteration.
    let t0 = Instant::now();
    let plan =
        TriangularSolvePlan::new(&f, nprocs, ExecutorKind::SelfExecuting, Sorting::Global).unwrap();
    let (ph_l, ph_u) = plan.num_phases();
    println!(
        "inspector (wavefronts + schedules): {:.1} ms; phases fwd {ph_l} / bwd {ph_u}",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let m = Preconditioner::Ilu(plan);

    // Manufactured solution: x* known, b = A x*.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) * 0.1).collect();
    let mut b = vec![0.0; n];
    a.matvec(&x_true, &mut b).unwrap();

    let cfg = KrylovConfig {
        tol: 1e-10,
        max_iter: 400,
        restart: 30,
    };
    let mut x = vec![0.0; n];
    let t0 = Instant::now();
    let stats = gmres(&pool, a, &b, &mut x, &m, &cfg).expect("gmres");
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "GMRES(30)+ILU(0): {} iterations, relative residual {:.2e}, {:.1} ms",
        stats.iterations,
        stats.relative_residual,
        dt * 1e3
    );
    assert!(stats.converged, "solver must converge: {stats:?}");

    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / x_true.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    println!("relative max error vs manufactured solution: {err:.2e}");
    assert!(err < 1e-6);
    println!("OK.");
}
