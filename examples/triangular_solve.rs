//! Parallel sparse triangular solve — the paper's central workload.
//!
//! Builds the 5-PT test problem (Appendix I, problem 6), factors it with
//! ILU(0), and runs the forward/backward solves with all four executors,
//! printing host wall-clock timings and 16-processor simulated times from
//! the calibrated cost model.
//!
//! Run with: `cargo run --release --example triangular_solve`

use rtpl::krylov::{ExecutorKind, Sorting, TriangularSolvePlan};
use rtpl::prelude::*;
use rtpl::sim::{self, CostModel};
use rtpl::sparse::ilu0;
use rtpl::workload::{ProblemId, TestProblem};
use std::time::Instant;

fn main() {
    let problem = TestProblem::build(ProblemId::FivePt);
    let a = &problem.matrix;
    let n = a.nrows();
    println!("problem {} : n = {n}, nnz = {}", problem.name, a.nnz());

    let f = ilu0(a).expect("ILU(0)");
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();

    // Reference sequential solve.
    let plan_seq =
        TriangularSolvePlan::new(&f, 1, ExecutorKind::Sequential, Sorting::Global).unwrap();
    let pool1 = WorkerPool::new(1);
    let mut x_ref = vec![0.0; n];
    let mut work = vec![0.0; n];
    let t0 = Instant::now();
    let reps = 20;
    for _ in 0..reps {
        plan_seq.solve(&pool1, &b, &mut x_ref, &mut work);
    }
    let t_seq = t0.elapsed().as_secs_f64() / reps as f64;
    println!("sequential LU solve: {:.3} ms", t_seq * 1e3);
    let (ph_l, ph_u) = plan_seq.num_phases();
    println!("phases: forward {ph_l}, backward {ph_u}");

    // Host executors (thread count limited by this machine).
    let nprocs = std::thread::available_parallelism().map_or(2, |c| c.get().min(4));
    let pool = WorkerPool::new(nprocs);
    println!("\n-- host execution with {nprocs} worker threads --");
    for kind in [
        ExecutorKind::Doacross,
        ExecutorKind::PreScheduled,
        ExecutorKind::SelfExecuting,
    ] {
        let plan = TriangularSolvePlan::new(&f, nprocs, kind, Sorting::Global).unwrap();
        let mut x = vec![0.0; n];
        let t0 = Instant::now();
        for _ in 0..reps {
            plan.solve(&pool, &b, &mut x, &mut work);
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        let err = x
            .iter()
            .zip(&x_ref)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("{kind:?}: {:.3} ms (max deviation {err:.2e})", dt * 1e3);
        assert!(err < 1e-12);
    }

    // 16-processor Multimax-style simulation (the paper's machine).
    println!("\n-- simulated 16-processor execution (calibrated cost model) --");
    let p16 = 16;
    let plan16 =
        TriangularSolvePlan::new(&f, p16, ExecutorKind::SelfExecuting, Sorting::Global).unwrap();
    let weights = plan16.weights_l();
    let g = DepGraph::from_lower_triangular(&f.l).unwrap();
    let cost = CostModel::multimax();
    let seq = sim::sim_sequential(n, Some(&weights), &cost);
    let se = sim::sim_self_executing(plan16.schedule_l(), &g, Some(&weights), &cost);
    let ps = sim::sim_pre_scheduled(plan16.schedule_l(), Some(&weights), &cost);
    let da = sim::sim_doacross(&g, p16, Some(&weights), &cost);
    println!("forward solve, sequential time   : {seq:>10.0} units");
    println!(
        "self-executing : {:>10.0} units (efficiency {:.2})",
        se.time,
        se.efficiency(seq)
    );
    println!(
        "pre-scheduled  : {:>10.0} units (efficiency {:.2})",
        ps.time,
        ps.efficiency(seq)
    );
    println!(
        "doacross       : {:>10.0} units (efficiency {:.2})",
        da.time,
        da.efficiency(seq)
    );
}
