//! The TCP front door, end to end over loopback: spawn an `rtpl-server`,
//! walk the intended client flow (cold solve → warm check → solve by
//! fingerprint), and read the metrics endpoint.
//!
//! ```sh
//! cargo run --release --example serve_loopback
//! ```
//!
//! The interesting part is what the *second* client sees: the first
//! client's `Solve` registered the pattern and warmed the plan cache, so
//! the second never ships a matrix at all — `WarmCheck` says yes, and
//! every solve goes by fingerprint. That is the paper's amortization
//! argument stretched across a network boundary.

use rtpl::runtime::Runtime;
use rtpl::server::proto::Response;
use rtpl::server::{Client, Server, ServerConfig};
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::ilu0;
use std::io::Read;

fn main() {
    let mut cfg = ServerConfig::default();
    cfg.runtime.nprocs = 2;
    let server = Server::spawn(cfg).expect("spawn server");
    println!(
        "serving on {}, metrics on {}\n",
        server.addr(),
        server.metrics_addr()
    );

    let f = ilu0(&laplacian_5pt(30, 30)).expect("ilu0");
    let key = Runtime::solve_key(&f);
    let b = vec![1.0; f.n()];

    // Client 1 pays the cold cost: factors go over the wire once.
    let mut first = Client::connect(server.addr()).expect("connect");
    let x1 = match first.solve(&f.l, &f.u, &b).expect("solve") {
        Response::Solved { x, cached, .. } => {
            println!("client 1: cold solve, cached = {cached}");
            x
        }
        other => panic!("{other:?}"),
    };

    // Client 2 never ships a matrix: warm check, then fingerprint solves.
    let mut second = Client::connect(server.addr()).expect("connect");
    match second.warm_check(key).expect("warm check") {
        Response::WarmStatus { level } => println!("client 2: warm check -> {level:?}"),
        other => panic!("{other:?}"),
    }
    for i in 0..3 {
        match second.solve_by_fingerprint(key, &b).expect("warm solve") {
            Response::Solved { x, cached, .. } => {
                assert_eq!(x, x1, "warm solve deviates");
                println!("client 2: fingerprint solve {i}, cached = {cached}");
            }
            other => panic!("{other:?}"),
        }
    }

    // The metrics endpoint is plain HTTP; read it with a raw socket.
    let mut text = String::new();
    let mut sock = std::net::TcpStream::connect(server.metrics_addr()).expect("metrics");
    std::io::Write::write_all(&mut sock, b"GET / HTTP/1.0\r\n\r\n").expect("request");
    sock.read_to_string(&mut text).expect("read metrics");
    let body = text.split("\r\n\r\n").nth(1).unwrap_or(&text);
    println!("\nmetrics (excerpt):");
    for line in body.lines().filter(|l| {
        l.starts_with("rtpl_server_answered")
            || l.starts_with("rtpl_server_latency_solve_by_fingerprint_p")
            || l.starts_with("rtpl_solve_cache")
    }) {
        println!("  {line}");
    }

    server.shutdown().expect("shutdown");
    println!("\ndrained and shut down cleanly");
}
