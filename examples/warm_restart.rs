//! Warm restart, end to end: two runtime "lifetimes" (the second one
//! standing in for a restarted process) share one plan-store file in the
//! temp directory.
//!
//! ```sh
//! cargo run --release --example warm_restart
//! ```
//!
//! The first lifetime pays the inspector — dependence analysis, wavefront
//! sort, schedule compilation — and the store's write-behind flusher
//! spills the finished artifact. The second lifetime never inspects:
//! its first solve decodes the persisted plan (and the selector's learned
//! policy measurements ride along), and `warm_from_store` shows the
//! eager variant that preloads the memory cache before any request
//! arrives. The answers are compared against the first lifetime's.

use rtpl::runtime::{Runtime, RuntimeConfig};
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::ilu0;
use std::time::Instant;

fn main() {
    let path = std::env::temp_dir().join(format!("rtpl-warm-restart-{}.rtpl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = RuntimeConfig {
        nprocs: 2,
        calibrate: false,
        store_path: Some(path.clone()),
        ..RuntimeConfig::default()
    };

    let f = ilu0(&laplacian_5pt(65, 65)).expect("ilu0");
    let n = f.n();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64 * 0.061).collect();

    // Lifetime 1: cold. The first solve inspects, compiles, and spills.
    let rt = Runtime::new(cfg.clone());
    let mut x1 = vec![0.0; n];
    let t = Instant::now();
    rt.solve(&f, &b, &mut x1).expect("cold solve");
    let cold_ns = t.elapsed().as_nanos();
    for _ in 0..8 {
        let mut x = vec![0.0; n];
        rt.solve(&f, &b, &mut x).expect("warm solve"); // lets the selector learn
    }
    rt.persist_learned(); // re-spill with the measured policy costs
    let s1 = rt.stats();
    println!(
        "lifetime 1 (cold):   first solve {cold_ns:>9} ns  | store writes {}",
        s1.store_writes
    );
    drop(rt); // the store flushes and closes with the runtime

    // Lifetime 2: "restarted process". Same store file, empty memory cache.
    let rt = Runtime::new(cfg.clone());
    let mut x2 = vec![0.0; n];
    let t = Instant::now();
    rt.solve(&f, &b, &mut x2).expect("store-hit solve");
    let store_ns = t.elapsed().as_nanos();
    let s2 = rt.stats();
    assert_eq!(s2.store_hits, 1, "restart did not hit the store");
    let diff = x1
        .iter()
        .zip(&x2)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(diff < 1e-12, "answers deviate across the restart: {diff:e}");
    println!(
        "lifetime 2 (store):  first solve {store_ns:>9} ns  | store hits {} | max |dx| {diff:e}",
        s2.store_hits
    );
    println!(
        "cold / store-hit first-solve ratio: {:.1}x",
        cold_ns as f64 / store_ns as f64
    );
    drop(rt);

    // Or eagerly: warm the memory cache before any request arrives.
    let rt = Runtime::new(cfg);
    let t = Instant::now();
    let warmed = rt.warm_from_store(16);
    println!(
        "lifetime 3 (warmed): {warmed} plan(s) preloaded in {} ns; first solve is a memory hit",
        t.elapsed().as_nanos()
    );
    let mut x3 = vec![0.0; n];
    rt.solve(&f, &b, &mut x3).expect("memory-warm solve");
    assert_eq!(
        rt.stats().solves.hits,
        1,
        "warmed plan was not a memory hit"
    );

    let _ = std::fs::remove_file(&path);
}
