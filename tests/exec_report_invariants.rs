//! `ExecReport` accounting invariants, across policies and schedules:
//!
//! * the per-processor iteration counts of every report sum to the trip
//!   count `n`, with one slot per scheduled processor;
//! * `PreScheduledElided` performs **no more barriers than the minimal
//!   `BarrierPlan` it ran under** (and therefore no more than the full
//!   plan's `phases − 1`), while plain `PreScheduled` performs exactly
//!   `phases − 1`.

use rtpl::executor::WorkerPool;
use rtpl::inspector::{DepGraph, Partition, Schedule, Wavefronts};
use rtpl::prelude::*;
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::rng::SmallRng;

/// A random forward DAG (every dependence targets a smaller index).
fn random_dag(rng: &mut SmallRng, nmax: usize, maxdeg: usize) -> DepGraph {
    let n = rng.gen_range_usize(2, nmax);
    let lists: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            if i == 0 {
                Vec::new()
            } else {
                let deg = rng.gen_range_inclusive_usize(0, maxdeg.min(i));
                let mut v: Vec<u32> = (0..deg).map(|_| rng.gen_range_usize(0, i) as u32).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        })
        .collect();
    DepGraph::from_lists(n, lists).unwrap()
}

struct DagBody<'a>(&'a DepGraph);

impl LoopBody for DagBody<'_> {
    fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
        let mut acc = (i as f64 + 1.0).ln_1p();
        for &d in self.0.deps(i) {
            acc += 0.5 * src.get(d as usize);
        }
        acc
    }
}

fn check_report_shape(report: &rtpl::ExecReport, n: usize, nprocs: usize, ctx: &str) {
    assert_eq!(
        report.iters_per_proc.len(),
        nprocs,
        "{ctx}: one iteration slot per processor"
    );
    assert_eq!(
        report.total_iters() as usize,
        n,
        "{ctx}: per-processor iteration counts must sum to n"
    );
}

#[test]
fn iteration_counts_sum_to_n_for_every_policy() {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for case in 0..12 {
        let g = random_dag(&mut rng, 120, 5);
        let n = g.n();
        let wf = Wavefronts::compute(&g).unwrap();
        for p in [1usize, 2, 4] {
            let schedule = Schedule::global(&wf, p).unwrap();
            let plan = PlannedLoop::new(g.clone(), schedule).unwrap();
            let pool = WorkerPool::new(p);
            let body = DagBody(plan.graph());
            for policy in ExecPolicy::ALL {
                let mut out = vec![0.0; n];
                let report = plan.run(&pool, policy, &body, &mut out);
                check_report_shape(&report, n, p, &format!("case {case}, p {p}, {policy:?}"));
            }
            // The sequential reference reports one virtual processor.
            let mut out = vec![0.0; n];
            let seq = plan.run_sequential(&body, &mut out);
            assert_eq!(seq.iters_per_proc, vec![n as u64]);
            assert_eq!(seq.barriers, 0);
            assert_eq!(seq.stalls, 0);
        }
    }
}

#[test]
fn elided_barrier_count_is_bounded_by_the_minimal_plan() {
    // Local contiguous schedules on meshes leave many droppable barriers —
    // the interesting regime for the elision invariant.
    for (nx, ny, p) in [(8usize, 8usize, 4usize), (10, 6, 3), (12, 12, 2)] {
        let l = laplacian_5pt(nx, ny).strict_lower();
        let n = l.nrows();
        let g = DepGraph::from_lower_triangular(&l).unwrap();
        let wf = Wavefronts::compute(&g).unwrap();
        let schedule = Schedule::local(&wf, &Partition::contiguous(n, p).unwrap()).unwrap();
        let plan = PlannedLoop::new(g, schedule).unwrap();
        let pool = WorkerPool::new(p);
        let body = DagBody(plan.graph());

        let mut out_full = vec![0.0; n];
        let full = plan.run(&pool, ExecPolicy::PreScheduled, &body, &mut out_full);
        let mut out_elided = vec![0.0; n];
        let elided = plan.run(
            &pool,
            ExecPolicy::PreScheduledElided,
            &body,
            &mut out_elided,
        );

        assert_eq!(out_full, out_elided, "{nx}x{ny}/{p}: same answer");
        let minimal = plan.barrier_plan().count() as u64;
        assert!(
            elided.barriers <= minimal,
            "{nx}x{ny}/{p}: elided executor performed {} barriers, minimal plan allows {minimal}",
            elided.barriers
        );
        assert_eq!(
            full.barriers as usize,
            plan.num_phases() - 1,
            "{nx}x{ny}/{p}: full discipline pays every boundary"
        );
        assert!(elided.barriers <= full.barriers);
        // On these shapes elision actually removes barriers — the
        // invariant is not vacuous.
        assert!(
            (minimal as usize) < plan.num_phases() - 1,
            "{nx}x{ny}/{p}: expected a non-trivial elision opportunity"
        );
    }
}

#[test]
fn random_dags_respect_the_elision_bound() {
    let mut rng = SmallRng::seed_from_u64(0xE1DE);
    for _ in 0..10 {
        let g = random_dag(&mut rng, 90, 4);
        let n = g.n();
        let wf = Wavefronts::compute(&g).unwrap();
        for p in [2usize, 3] {
            let schedule = Schedule::local(&wf, &Partition::striped(n, p).unwrap()).unwrap();
            let plan = PlannedLoop::new(g.clone(), schedule).unwrap();
            let pool = WorkerPool::new(p);
            let body = DagBody(plan.graph());
            let mut out = vec![0.0; n];
            let elided = plan.run(&pool, ExecPolicy::PreScheduledElided, &body, &mut out);
            assert!(elided.barriers <= plan.barrier_plan().count() as u64);
            check_report_shape(&elided, n, p, "random elided");
        }
    }
}
