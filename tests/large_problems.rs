//! Scale checks on the paper's large problem variants: the full inspector
//! pipeline (factorization, wavefronts, schedules, simulation) on tens of
//! thousands of unknowns, plus the documented figures for the small set.

use rtpl::inspector::{DepGraph, Schedule, Wavefronts};
use rtpl::sim::{self, CostModel};
use rtpl::sparse::ilu0;
use rtpl::workload::{ProblemId, TestProblem};

fn phases_of(id: ProblemId) -> (usize, usize) {
    let p = TestProblem::build(id);
    let f = ilu0(&p.matrix).unwrap();
    let g = DepGraph::from_lower_triangular(&f.l).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    (p.n(), wf.num_wavefronts())
}

#[test]
fn l7pt_full_pipeline() {
    // 30×30×30 = 27000 unknowns; phases = 30+30+30-2 = 88 for the 7-pt
    // ILU(0) factor.
    let (n, phases) = phases_of(ProblemId::L7Pt);
    assert_eq!(n, 27000);
    assert_eq!(phases, 88);
}

#[test]
fn l5pt_full_pipeline_and_simulation() {
    // 200×200 = 40000 unknowns; phases = 200+200-1 = 399.
    let p = TestProblem::build(ProblemId::L5Pt);
    assert_eq!(p.n(), 40000);
    let f = ilu0(&p.matrix).unwrap();
    let g = DepGraph::from_lower_triangular(&f.l).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    assert_eq!(wf.num_wavefronts(), 399);

    // Large square meshes are pre-scheduling's best case (§4, eq. 7):
    // at 16 processors its symbolic efficiency approaches self-execution's.
    let s = Schedule::global(&wf, 16).unwrap();
    let zero = CostModel::zero_overhead();
    let weights: Vec<f64> = (0..p.n()).map(|i| 1.0 + g.deps(i).len() as f64).collect();
    let seq = sim::sim_sequential(p.n(), Some(&weights), &zero);
    let e_se = sim::sim_self_executing(&s, &g, Some(&weights), &zero).efficiency(seq);
    let e_ps = sim::sim_pre_scheduled(&s, Some(&weights), &zero).efficiency(seq);
    assert!(e_se > 0.95, "self-exec efficiency {e_se}");
    assert!(e_ps > 0.85, "pre-sched efficiency {e_ps}");
    assert!(e_se >= e_ps);
}

#[test]
fn l9pt_builds() {
    let (n, phases) = phases_of(ProblemId::L9Pt);
    assert_eq!(n, 16129); // 127×127
                          // 9-pt stencil with corner couplings: deeper chains than 5-pt.
    assert!(phases > 127);
}

#[test]
fn small_problem_phase_documentation() {
    // The values recorded in EXPERIMENTS.md.
    assert_eq!(phases_of(ProblemId::FivePt).1, 125);
    assert_eq!(phases_of(ProblemId::SevenPt).1, 58);
    assert_eq!(phases_of(ProblemId::Spe1).1, 28);
}
