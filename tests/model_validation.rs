//! Validates the §4 closed-form model against the discrete-event simulator
//! on real mesh dependence graphs.

use rtpl::inspector::{DepGraph, Schedule, Wavefronts};
use rtpl::sim::{model, sim_pre_scheduled, sim_self_executing, sim_sequential, CostModel};
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::rng::SmallRng;

fn mesh(m: usize, n: usize) -> (DepGraph, Wavefronts) {
    // m rows (ny), n columns (nx): wavefront of (x, y) is x + y.
    let a = laplacian_5pt(n, m);
    let g = DepGraph::from_lower_triangular(&a.strict_lower()).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    (g, wf)
}

#[test]
fn eq3_matches_simulator_exactly() {
    // The exact expression (eq. 3) and the event simulator must agree to
    // rounding on every mesh/processor combination.
    for (m, n) in [(5, 7), (16, 16), (9, 33), (12, 4)] {
        for p in [1usize, 2, 3, 4, 8] {
            if p > m.min(n) {
                continue;
            }
            let (_, wf) = mesh(m, n);
            let s = Schedule::global(&wf, p).unwrap();
            let zero = CostModel::zero_overhead();
            let seq = sim_sequential(m * n, None, &zero);
            let e_sim = sim_pre_scheduled(&s, None, &zero).efficiency(seq);
            let e_formula = model::presched_eopt(m, n, p);
            assert!(
                (e_sim - e_formula).abs() < 1e-12,
                "m={m} n={n} p={p}: sim {e_sim} vs eq(3) {e_formula}"
            );
        }
    }
}

#[test]
fn eq5_close_to_simulator_on_divisible_meshes() {
    // eq. (5) assumes the pipeline only loses the first/last p-1 wavefront
    // ramps; on p-divisible meshes the simulator tracks it closely.
    for (m, n, p) in [(16usize, 16usize, 4usize), (32, 32, 8), (24, 48, 8)] {
        let (g, wf) = mesh(m, n);
        let s = Schedule::global(&wf, p).unwrap();
        let zero = CostModel::zero_overhead();
        let seq = sim_sequential(m * n, None, &zero);
        let e_sim = sim_self_executing(&s, &g, None, &zero).efficiency(seq);
        let e_formula = model::selfexec_eopt(m, n, p);
        assert!(
            (e_sim - e_formula).abs() < 0.08,
            "m={m} n={n} p={p}: sim {e_sim} vs eq(5) {e_formula}"
        );
    }
}

#[test]
fn phase_count_is_m_plus_n_minus_1() {
    for (m, n) in [(5usize, 7usize), (16, 16), (3, 9)] {
        let (_, wf) = mesh(m, n);
        assert_eq!(wf.num_wavefronts(), model::model_num_phases(m, n));
    }
}

#[test]
fn self_execution_dominates_pre_scheduling_in_load_balance() {
    // The paper: "it is possible to show that the parallelism available
    // from the self-executing version of the program is always better".
    for (m, n) in [(8usize, 8usize), (11, 5), (16, 24)] {
        for p in [2usize, 4, 5] {
            let (g, wf) = mesh(m, n);
            let s = Schedule::global(&wf, p).unwrap();
            let zero = CostModel::zero_overhead();
            let se = sim_self_executing(&s, &g, None, &zero).time;
            let ps = sim_pre_scheduled(&s, None, &zero).time;
            assert!(se <= ps + 1e-9, "m={m} n={n} p={p}");
        }
    }
}

#[test]
fn eq3_matches_simulator_randomized() {
    let mut rng = SmallRng::seed_from_u64(0xE93);
    let mut cases = 0;
    while cases < 16 {
        let m = rng.gen_range_usize(3, 14);
        let n = rng.gen_range_usize(3, 14);
        let p = rng.gen_range_usize(1, 5);
        if p > m.min(n) {
            continue;
        }
        cases += 1;
        let (_, wf) = mesh(m, n);
        let s = Schedule::global(&wf, p).unwrap();
        let zero = CostModel::zero_overhead();
        let seq = sim_sequential(m * n, None, &zero);
        let e_sim = sim_pre_scheduled(&s, None, &zero).efficiency(seq);
        assert!(
            (e_sim - model::presched_eopt(m, n, p)).abs() < 1e-12,
            "m={m} n={n} p={p}"
        );
    }
}

#[test]
fn mc_matches_wavefront_census() {
    // MC(j) = ceil(strips in phase j / p) must match the actual schedule.
    let mut rng = SmallRng::seed_from_u64(0x3C);
    let mut cases = 0;
    while cases < 16 {
        let m = rng.gen_range_usize(3, 12);
        let n = rng.gen_range_usize(3, 12);
        let p = rng.gen_range_usize(1, 5);
        if p > m.min(n) {
            continue;
        }
        cases += 1;
        let (_, wf) = mesh(m, n);
        let counts = wf.counts();
        for (j0, &cnt) in counts.iter().enumerate() {
            let j = j0 + 1; // the paper's phases are 1-based
            assert_eq!(model::mc(j, m, n, p), cnt.div_ceil(p), "m={m} n={n} p={p}");
        }
    }
}
