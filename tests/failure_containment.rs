//! Failure containment end to end: a poisoned job fails alone — typed,
//! counted, and without taking down its batch, its runtime, or its
//! server.
//!
//! Covers the containment layer across crates: typed panic recovery
//! (`RuntimeError::BodyPanicked` on the failing job only), deadlines
//! (queued jobs answered `DEADLINE_EXCEEDED` without running), connection
//! deadlines (idle and mid-frame stalls reclaim the reader), and the
//! metrics surface that makes all of it observable.

use rtpl::prelude::{LoopBody, ValueSource};
use rtpl::runtime::{Job, LoopSpec, Runtime, RuntimeConfig, RuntimeError};
use rtpl::server::proto::{err_code, Request, Response};
use rtpl::server::{Client, Server, ServerConfig};
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::{ilu0, Csr};
use rtpl::DoConsider;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn test_cfg() -> RuntimeConfig {
    RuntimeConfig {
        nprocs: 2,
        calibrate: false,
        ..RuntimeConfig::default()
    }
}

fn rhs(n: usize, salt: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + ((i * 31 + salt * 17) % 89) as f64 * 0.013)
        .collect()
}

/// Sums dependences, except at `bomb`, where it panics.
struct BombBody<'a> {
    lower: &'a Csr,
    bomb: Option<usize>,
}

impl LoopBody for BombBody<'_> {
    fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
        if Some(i) == self.bomb {
            panic!("injected body failure at index {i}");
        }
        1.0 + self
            .lower
            .row_indices(i)
            .iter()
            .map(|&d| src.get(d as usize))
            .sum::<f64>()
    }
}

fn loop_spec(lower: &Csr) -> LoopSpec {
    DoConsider::from_lower_triangular(lower)
        .unwrap()
        .into_spec()
}

/// The tentpole acceptance test: one panicking loop body inside a mixed
/// batch fails its own job with `BodyPanicked`, every other job's output
/// is bit-exact, and the *same* runtime serves the same patterns
/// afterwards.
#[test]
fn panicking_job_fails_alone_and_runtime_survives() {
    let f = ilu0(&laplacian_5pt(7, 5)).unwrap();
    let lower = laplacian_5pt(6, 6).strict_lower();
    let n_solve = f.n();
    let n_loop = lower.nrows();
    let spec = loop_spec(&lower);
    let b = rhs(n_solve, 1);

    // Sequential references on a fresh runtime.
    let rt_ref = Runtime::new(test_cfg());
    let mut expect_x = vec![0.0; n_solve];
    rt_ref.solve(&f, &b, &mut expect_x).unwrap();
    let good = BombBody {
        lower: &lower,
        bomb: None,
    };
    let mut expect_loop = vec![0.0; n_loop];
    rt_ref.run_spec(&spec, &good, &mut expect_loop).unwrap();

    let rt = Runtime::new(test_cfg());
    let bad = BombBody {
        lower: &lower,
        bomb: Some(n_loop / 2),
    };
    let mut x = vec![0.0; n_solve];
    let mut poisoned = vec![0.0; n_loop];
    let mut fine = vec![0.0; n_loop];
    let outcome = rt.submit_batch(vec![
        Job::solve(&f, &b, &mut x),
        Job::looped(&spec, &bad, &mut poisoned),
        Job::looped(&spec, &good, &mut fine),
    ]);
    assert_eq!(outcome.ok_count(), 2);
    assert!(
        matches!(outcome.jobs[1], Err(RuntimeError::BodyPanicked { .. })),
        "the poisoned job must fail typed, not panic the process; got {:?}",
        outcome.jobs[1]
    );
    assert!(outcome.jobs[0].is_ok());
    assert!(
        outcome.jobs[2].is_ok(),
        "a same-pattern peer of the poisoned job must still run: {:?}",
        outcome.jobs[2]
    );
    assert_eq!(x, expect_x, "solve sharing the batch deviates");
    assert_eq!(fine, expect_loop, "loop job sharing the pattern deviates");

    // Containment, not contagion: the same runtime instance keeps serving
    // both patterns, bit-exact.
    let mut x2 = vec![0.0; n_solve];
    let mut loop2 = vec![0.0; n_loop];
    rt.solve(&f, &b, &mut x2).unwrap();
    rt.run_spec(&spec, &good, &mut loop2).unwrap();
    assert_eq!(x2, expect_x);
    assert_eq!(loop2, expect_loop);

    let stats = rt.stats();
    assert_eq!(stats.body_panics, 1, "exactly one contained panic counted");
    assert_eq!(stats.circuit_open, 0, "one failure must not trip a breaker");
}

/// A deadline that can only expire in the queue is answered typed —
/// `DEADLINE_EXCEEDED`, never a hang, never a solve — and counted.
#[test]
fn server_expires_queued_jobs_typed() {
    let mut cfg = ServerConfig {
        runtime: test_cfg(),
        ..ServerConfig::default()
    };
    cfg.job_deadline = Some(Duration::ZERO); // expired the moment it queues
    let server = Server::spawn(cfg).unwrap();
    let f = ilu0(&laplacian_5pt(6, 5)).unwrap();
    let b = rhs(f.n(), 2);

    let mut client = Client::connect(server.addr()).unwrap();
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, err_code::DEADLINE_EXCEEDED),
        other => panic!("expected a deadline error, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.accepted_jobs, 1);
    assert_eq!(stats.answered_jobs, 1, "expired jobs still count answered");
    assert_eq!(stats.expired_jobs, 1);
    server.shutdown().unwrap();
}

/// Connection deadlines reclaim reader threads from both failure shapes:
/// a peer that opens a frame and stalls (slowloris) and a peer that goes
/// silent at a frame boundary under an idle bound.
#[test]
fn stalled_and_idle_connections_are_closed_and_counted() {
    let mut cfg = ServerConfig {
        runtime: test_cfg(),
        ..ServerConfig::default()
    };
    cfg.idle_timeout = Some(Duration::from_millis(60));
    cfg.frame_timeout = Some(Duration::from_millis(60));
    let server = Server::spawn(cfg).unwrap();

    // Slowloris: 2 bytes of a length prefix, then nothing.
    let mut stall = TcpStream::connect(server.addr()).unwrap();
    stall.write_all(&[0x10, 0x00]).unwrap();
    // Idle: a connection that never sends a byte.
    let idle = TcpStream::connect(server.addr()).unwrap();

    let t0 = Instant::now();
    while (server.stats().closed_stalled < 1 || server.stats().closed_idle < 1)
        && t0.elapsed() < Duration::from_secs(5)
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = server.stats();
    assert_eq!(stats.closed_stalled, 1, "mid-frame stall must be reclaimed");
    assert_eq!(stats.closed_idle, 1, "idle bound must close the quiet peer");
    drop(stall);
    drop(idle);

    // The server still serves new clients afterwards.
    let f = ilu0(&laplacian_5pt(5, 5)).unwrap();
    let b = rhs(f.n(), 3);
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(matches!(
        client.solve(&f.l, &f.u, &b).unwrap(),
        Response::Solved { .. }
    ));
    server.shutdown().unwrap();
}

/// Every failure counter is present in the metrics text — the whole
/// containment layer is observable from the wire without reading code.
#[test]
fn metrics_text_lists_every_failure_counter() {
    let server = Server::spawn(ServerConfig {
        runtime: test_cfg(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let text = match client.call(&Request::Stats).unwrap() {
        Response::StatsText { text } => text,
        other => panic!("{other:?}"),
    };
    for key in [
        // Server edge.
        "rtpl_server_connections",
        "rtpl_server_accepted_jobs",
        "rtpl_server_answered_jobs",
        "rtpl_server_rejected_queue",
        "rtpl_server_rejected_quota",
        "rtpl_server_rejected_draining",
        "rtpl_server_registered_patterns",
        "rtpl_server_registry_evictions",
        "rtpl_server_expired_jobs",
        "rtpl_server_closed_idle",
        "rtpl_server_closed_stalled",
        "rtpl_failpoint_trips",
        // Runtime failure containment.
        "rtpl_body_panics",
        "rtpl_deadline_expired",
        "rtpl_circuit_open",
        "rtpl_pool_rebuilds",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(key)),
            "metrics text missing {key:?}:\n{text}"
        );
    }
    server.shutdown().unwrap();
}
