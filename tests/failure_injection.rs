//! Failure injection: buggy loop bodies, malformed inputs, and poisoned
//! synchronization must fail cleanly (panic/Err), never hang or corrupt.

use rtpl::executor::{
    doacross, pre_scheduled, self_executing, Chunking, self_scheduling, WorkerPool,
};
use rtpl::inspector::{BarrierPlan, DepGraph, InspectorError, Schedule, Wavefronts};
use rtpl::sparse::gen::laplacian_5pt;

fn mesh_schedule(nx: usize, ny: usize, p: usize) -> (DepGraph, Schedule) {
    let g = DepGraph::from_lower_triangular(&laplacian_5pt(nx, ny).strict_lower()).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let s = Schedule::global(&wf, p).unwrap();
    (g, s)
}

/// A body that panics on one index. Peers busy-waiting on the poisoned
/// value must not livelock; `pool.run` must report the failure.
#[test]
fn panicking_body_fails_self_executing_without_hanging() {
    let (g, s) = mesh_schedule(8, 8, 2);
    let pool = WorkerPool::new(2);
    let mut out = vec![0.0; g.n()];
    let body = |i: usize, src: &dyn rtpl::executor::ValueSource| {
        if i == 20 {
            panic!("injected failure at index 20");
        }
        1.0 + g.deps(i).iter().map(|&d| src.get(d as usize)).sum::<f64>()
    };
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        self_executing(&pool, &s, &body, &mut out)
    }));
    assert!(r.is_err(), "the panic must propagate to the caller");
}

#[test]
fn panicking_body_fails_pre_scheduled_without_hanging() {
    let (g, s) = mesh_schedule(8, 8, 2);
    let pool = WorkerPool::new(2);
    let mut out = vec![0.0; g.n()];
    let body = |i: usize, src: &dyn rtpl::executor::ValueSource| {
        if i == 33 {
            panic!("injected failure");
        }
        1.0 + g.deps(i).iter().map(|&d| src.get(d as usize)).sum::<f64>()
    };
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pre_scheduled(&pool, &s, &body, &mut out)
    }));
    assert!(r.is_err());
}

#[test]
fn panicking_body_fails_doacross_and_self_scheduling() {
    let (g, _) = mesh_schedule(6, 6, 2);
    let wf = Wavefronts::compute(&g).unwrap();
    let order = wf.sorted_list();
    let pool = WorkerPool::new(2);
    let body = |i: usize, src: &dyn rtpl::executor::ValueSource| {
        if i == 17 {
            panic!("boom");
        }
        1.0 + g.deps(i).iter().map(|&d| src.get(d as usize)).sum::<f64>()
    };
    let mut out = vec![0.0; g.n()];
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        doacross(&pool, g.n(), &body, &mut out)
    }));
    assert!(r.is_err());
    let mut out = vec![0.0; g.n()];
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        self_scheduling(&pool, &order, Chunking::Guided, &body, &mut out)
    }));
    assert!(r.is_err());
}

/// The pool survives a panicking job and stays usable.
#[test]
fn pool_reusable_after_panic() {
    let pool = WorkerPool::new(3);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(&|id| {
            if id == 1 {
                panic!("one worker dies");
            }
        });
    }));
    assert!(r.is_err());
    // Next job runs normally.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let count = AtomicUsize::new(0);
    pool.run(&|_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 3);
}

#[test]
fn cyclic_graphs_rejected_end_to_end() {
    let g = DepGraph::from_lists(3, vec![vec![1], vec![2], vec![0]]).unwrap();
    assert!(matches!(
        rtpl::DoConsider::inspect(g),
        Err(InspectorError::Cycle { .. })
    ));
}

#[test]
fn undercovering_barrier_plan_rejected() {
    let (g, s) = mesh_schedule(5, 5, 3);
    let full = BarrierPlan::full(s.num_phases());
    full.validate(&s, &g).unwrap();
    // An all-elided plan cannot cover cross-processor deps on a mesh.
    let empty = BarrierPlan::minimal(
        &Schedule::global(&Wavefronts::compute(&g).unwrap(), 1).unwrap(),
        &g,
    )
    .unwrap();
    // The single-processor minimal plan keeps nothing; validating it against
    // the 3-processor schedule must fail.
    assert_eq!(empty.count(), 0);
    assert!(empty.validate(&s, &g).is_err());
}

#[test]
fn zero_length_loops_are_fine_everywhere() {
    let g = DepGraph::from_lists(0, Vec::<Vec<u32>>::new()).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let s = Schedule::global(&wf, 2).unwrap();
    let pool = WorkerPool::new(2);
    let mut out: Vec<f64> = vec![];
    self_executing(&pool, &s, &|_, _| unreachable!(), &mut out);
    pre_scheduled(&pool, &s, &|_, _| unreachable!(), &mut out);
    doacross(&pool, 0, &|_, _| unreachable!(), &mut out);
}

#[test]
fn non_finite_values_transport_correctly() {
    // The executors must not corrupt NaN/inf payloads (bit transport).
    let g = DepGraph::from_lists(3, vec![vec![], vec![0], vec![1]]).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let s = Schedule::global(&wf, 2).unwrap();
    let pool = WorkerPool::new(2);
    let mut out = vec![0.0; 3];
    self_executing(
        &pool,
        &s,
        &|i, src| match i {
            0 => f64::NAN,
            1 => {
                assert!(src.get(0).is_nan());
                f64::INFINITY
            }
            _ => src.get(1) - 1.0,
        },
        &mut out,
    );
    assert!(out[0].is_nan());
    assert_eq!(out[1], f64::INFINITY);
    assert_eq!(out[2], f64::INFINITY);
}
