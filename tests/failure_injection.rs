//! Failure injection: buggy loop bodies, malformed inputs, and poisoned
//! synchronization must fail cleanly (panic/Err), never hang or corrupt.

use rtpl::executor::{self_scheduling, Chunking, WorkerPool};
use rtpl::inspector::{BarrierPlan, DepGraph, InspectorError, Schedule, Wavefronts};
use rtpl::prelude::*;
use rtpl::sparse::gen::laplacian_5pt;

fn mesh_plan(nx: usize, ny: usize, p: usize) -> PlannedLoop {
    let g = DepGraph::from_lower_triangular(&laplacian_5pt(nx, ny).strict_lower()).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let s = Schedule::global(&wf, p).unwrap();
    PlannedLoop::new(g, s).unwrap()
}

/// A body that panics on one index; every other index sums its operands.
struct Bomb<'a> {
    graph: &'a DepGraph,
    bomb: usize,
}

impl LoopBody for Bomb<'_> {
    fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
        assert!(i != self.bomb, "injected failure at index {i}");
        1.0 + self
            .graph
            .deps(i)
            .iter()
            .map(|&d| src.get(d as usize))
            .sum::<f64>()
    }
}

/// A body that panics on one index. Peers busy-waiting on the poisoned
/// value must not livelock; `pool.run` must report the failure, for every
/// policy.
#[test]
fn panicking_body_fails_every_policy_without_hanging() {
    for policy in ExecPolicy::ALL {
        let plan = mesh_plan(8, 8, 2);
        let pool = WorkerPool::new(2);
        let mut out = vec![0.0; plan.n()];
        let body = Bomb {
            graph: plan.graph(),
            bomb: 20,
        };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.run(&pool, policy, &body, &mut out)
        }));
        assert!(r.is_err(), "{policy:?}: the panic must propagate");
    }
}

/// A plan whose run panicked stays usable (poisoning is cleared by the next
/// run's epoch bump).
#[test]
fn plan_recovers_after_panicking_run() {
    let plan = mesh_plan(6, 6, 2);
    let pool = WorkerPool::new(2);
    let mut out = vec![0.0; plan.n()];
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        plan.run(
            &pool,
            ExecPolicy::SelfExecuting,
            &Bomb {
                graph: plan.graph(),
                bomb: 17,
            },
            &mut out,
        )
    }));
    assert!(r.is_err());
    // The same plan must now run a healthy body to completion.
    let healthy = Bomb {
        graph: plan.graph(),
        bomb: usize::MAX,
    };
    let mut seq = vec![0.0; plan.n()];
    plan.run_sequential(&healthy, &mut seq);
    let report = plan.run(&pool, ExecPolicy::SelfExecuting, &healthy, &mut out);
    assert_eq!(out, seq);
    assert_eq!(report.total_iters() as usize, plan.n());
}

#[test]
fn panicking_body_fails_self_scheduling() {
    let g = DepGraph::from_lower_triangular(&laplacian_5pt(6, 6).strict_lower()).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let order = wf.sorted_list();
    let pool = WorkerPool::new(2);
    let mut out = vec![0.0; g.n()];
    let gref = &g;
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        self_scheduling(
            &pool,
            &order,
            Chunking::Guided,
            &|i, src| {
                assert!(i != 17, "boom");
                1.0 + gref
                    .deps(i)
                    .iter()
                    .map(|&d| src.get(d as usize))
                    .sum::<f64>()
            },
            &mut out,
        )
    }));
    assert!(r.is_err());
}

/// The pool survives a panicking job — reported as a typed error, not an
/// unwind through the coordinator — and stays usable.
#[test]
fn pool_reusable_after_panic() {
    let pool = WorkerPool::new(3);
    let err = pool
        .run(&|id| {
            assert!(id != 1, "one worker dies");
        })
        .unwrap_err();
    assert_eq!(err.panicked, 1);
    assert!(pool.is_healthy());
    // Next job runs normally.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let count = AtomicUsize::new(0);
    pool.run(&|_| {
        count.fetch_add(1, Ordering::Relaxed);
    })
    .unwrap();
    assert_eq!(count.load(Ordering::Relaxed), 3);
}

#[test]
fn cyclic_graphs_rejected_end_to_end() {
    let g = DepGraph::from_lists(3, vec![vec![1], vec![2], vec![0]]).unwrap();
    assert!(matches!(
        rtpl::DoConsider::inspect(g),
        Err(InspectorError::Cycle { .. })
    ));
}

#[test]
fn undercovering_barrier_plan_rejected() {
    let g = DepGraph::from_lower_triangular(&laplacian_5pt(5, 5).strict_lower()).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let s = Schedule::global(&wf, 3).unwrap();
    let full = BarrierPlan::full(s.num_phases());
    full.validate(&s, &g).unwrap();
    // An all-elided plan cannot cover cross-processor deps on a mesh.
    let empty = BarrierPlan::minimal(&Schedule::global(&wf, 1).unwrap(), &g).unwrap();
    // The single-processor minimal plan keeps nothing; validating it against
    // the 3-processor schedule must fail.
    assert_eq!(empty.count(), 0);
    assert!(empty.validate(&s, &g).is_err());
}

#[test]
fn zero_length_loops_are_fine_everywhere() {
    struct Unreachable;
    impl LoopBody for Unreachable {
        fn eval<S: ValueSource>(&self, _: usize, _: &S) -> f64 {
            unreachable!("no iterations exist")
        }
    }
    let g = DepGraph::from_lists(0, Vec::<Vec<u32>>::new()).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let s = Schedule::global(&wf, 2).unwrap();
    let plan = PlannedLoop::new(g, s).unwrap();
    let pool = WorkerPool::new(2);
    let mut out: Vec<f64> = vec![];
    for policy in ExecPolicy::ALL {
        let report = plan.run(&pool, policy, &Unreachable, &mut out);
        assert_eq!(report.total_iters(), 0, "{policy:?}");
    }
}

#[test]
fn non_finite_values_transport_correctly() {
    // The executors must not corrupt NaN/inf payloads (bit transport).
    struct NonFinite;
    impl LoopBody for NonFinite {
        fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
            match i {
                0 => f64::NAN,
                1 => {
                    assert!(src.get(0).is_nan());
                    f64::INFINITY
                }
                _ => src.get(1) - 1.0,
            }
        }
    }
    let g = DepGraph::from_lists(3, vec![vec![], vec![0], vec![1]]).unwrap();
    let wf = Wavefronts::compute(&g).unwrap();
    let s = Schedule::global(&wf, 2).unwrap();
    let plan = PlannedLoop::new(g, s).unwrap();
    let pool = WorkerPool::new(2);
    let mut out = vec![0.0; 3];
    plan.run(&pool, ExecPolicy::SelfExecuting, &NonFinite, &mut out);
    assert!(out[0].is_nan());
    assert_eq!(out[1], f64::INFINITY);
    assert_eq!(out[2], f64::INFINITY);
}
