//! End-to-end pipeline tests: DoConsider over real matrices, all executor
//! and scheduling combinations, cross-checked against sequential execution.

use rtpl::prelude::*;
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::triangular::{row_substitution_lower, solve_lower, Diag};
use rtpl::workload::{ProblemId, SyntheticSpec, TestProblem};

/// The Figure 8 row-substitution body.
struct Solve<'a> {
    l: &'a Csr,
    b: &'a [f64],
}

impl LoopBody for Solve<'_> {
    fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
        row_substitution_lower(self.l, self.b, i, |j| src.get(j))
    }
}

#[test]
fn doconsider_triangular_solve_all_strategies() {
    let a = laplacian_5pt(10, 8);
    let l = a.strict_lower();
    let n = l.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.3).sin()).collect();
    let mut expect = vec![0.0; n];
    solve_lower(&l, &b, Diag::Unit, &mut expect).unwrap();
    let body = Solve { l: &l, b: &b };

    for p in [1usize, 2, 3] {
        let pool = WorkerPool::new(p);
        for strat in Scheduling::ALL {
            let plan = DoConsider::from_lower_triangular(&l)
                .unwrap()
                .schedule(strat, p)
                .unwrap();
            for policy in ExecPolicy::ALL {
                let mut out = vec![0.0; n];
                plan.run(&pool, policy, &body, &mut out);
                assert_eq!(out, expect, "{policy:?} {strat:?} p={p}");
            }
        }
    }
}

#[test]
fn synthetic_workload_end_to_end() {
    let spec = SyntheticSpec {
        mesh: 25,
        mean_degree: 4.0,
        mean_distance: 2.0,
    };
    let m = spec.generate(42);
    let l = m.strict_lower();
    let n = l.nrows();
    let dc = DoConsider::from_lower_triangular(&l).unwrap();
    assert!(dc.num_wavefronts() >= 2);
    dc.wavefronts().validate(dc.graph()).unwrap();

    let plan = dc.schedule(Scheduling::Global, 3).unwrap();
    plan.schedule().validate(plan.graph()).unwrap();

    let pool = WorkerPool::new(3);
    let b = vec![1.0; n];
    let mut out = vec![0.0; n];
    let report = plan.run(
        &pool,
        ExecPolicy::SelfExecuting,
        &Solve { l: &l, b: &b },
        &mut out,
    );
    assert_eq!(report.total_iters() as usize, n);
    let mut expect = vec![0.0; n];
    solve_lower(&l, &b, Diag::Unit, &mut expect).unwrap();
    assert_eq!(out, expect);
}

#[test]
fn nested_loop_figure6_semantics() {
    // y(i) = y(i) + temp * y(g(i,j)): multi-operand dependences.
    struct Figure6<'a> {
        g: &'a [Vec<usize>],
        yold: &'a [f64],
        temp: f64,
    }
    impl LoopBody for Figure6<'_> {
        fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
            let mut acc = self.yold[i];
            for &t in &self.g[i] {
                let operand = if t < i { src.get(t) } else { self.yold[t] };
                acc += self.temp * operand;
            }
            acc
        }
    }

    let g: Vec<Vec<usize>> = vec![
        vec![],
        vec![0],
        vec![0, 1],
        vec![1, 1, 5], // g may reference later indices (old values)
        vec![2, 3],
        vec![0],
    ];
    let yold: Vec<f64> = (1..=6).map(|v| v as f64).collect();
    let temp = 0.1;

    // Sequential reference per Figure 6 semantics (reads current y for
    // earlier indices, old y for later ones).
    let mut expect = yold.clone();
    for i in 0..6 {
        let mut acc = expect[i];
        for &t in &g[i] {
            let operand = if t < i { expect[t] } else { yold[t] };
            acc += temp * operand;
        }
        expect[i] = acc;
    }

    let dc = DoConsider::from_nested_index_array(&g).unwrap();
    let plan = dc.schedule(Scheduling::Global, 2).unwrap();
    let pool = WorkerPool::new(2);
    let mut out = vec![0.0; 6];
    plan.run(
        &pool,
        ExecPolicy::SelfExecuting,
        &Figure6 {
            g: &g,
            yold: &yold,
            temp,
        },
        &mut out,
    );
    assert_eq!(out, expect);
}

#[test]
fn paper_problem_phase_structure() {
    // Spot-check the wavefront structure of real test problems: the 3-D
    // 7-pt problems have nx+ny+nz-2 wavefronts for their ILU(0) factors.
    let spe1 = TestProblem::build(ProblemId::Spe1);
    let f = rtpl::sparse::ilu0(&spe1.matrix).unwrap();
    let dc = DoConsider::from_lower_triangular(&f.l).unwrap();
    assert_eq!(dc.num_wavefronts(), 10 + 10 + 10 - 2, "SPE1 10x10x10 grid");

    let spe4 = TestProblem::build(ProblemId::Spe4);
    let f = rtpl::sparse::ilu0(&spe4.matrix).unwrap();
    let dc = DoConsider::from_lower_triangular(&f.l).unwrap();
    assert_eq!(dc.num_wavefronts(), 16 + 23 + 3 - 2, "SPE4 16x23x3 grid");
}

#[test]
fn block_problems_have_denser_wavefronts() {
    // SPE5 blocks (3×3) couple unknowns within a point, lengthening chains
    // relative to the point operator: phases must be >= the point problem's.
    let spe4 = TestProblem::build(ProblemId::Spe4); // 16x23x3 point operator
    let spe5 = TestProblem::build(ProblemId::Spe5); // same grid, 3x3 blocks
    let f4 = rtpl::sparse::ilu0(&spe4.matrix).unwrap();
    let f5 = rtpl::sparse::ilu0(&spe5.matrix).unwrap();
    let w4 = DoConsider::from_lower_triangular(&f4.l)
        .unwrap()
        .num_wavefronts();
    let w5 = DoConsider::from_lower_triangular(&f5.l)
        .unwrap()
        .num_wavefronts();
    assert!(w5 >= w4, "block problem phases {w5} vs point {w4}");
}
