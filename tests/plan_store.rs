//! Acceptance tests for the persistent plan store (PR 7 satellite),
//! mirroring `wire_codec.rs` one layer down: round trips through a
//! restart must be **bit-exact** per policy; truncated, corrupted, or
//! version-skewed store files must come back as typed errors that the
//! runtime serves around with cold inspection — never panics, never
//! wrong answers.

use rtpl::krylov::ExecutorKind;
use rtpl::runtime::{Runtime, RuntimeConfig};
use rtpl::sparse::gen::random_lower;
use rtpl::sparse::ilu::IluFactors;
use rtpl::store::{PlanStore, StoreError, FORMAT_VERSION};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "rtpl-plan-store-test-{}-{name}.rtpl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn factors(n: usize, degree: usize, seed: u64) -> IluFactors {
    let m = random_lower(n, degree, seed);
    IluFactors {
        l: m.strict_lower(),
        u: m.transpose().upper(),
    }
}

fn cfg(path: &Path, nprocs: usize, policy: Option<ExecutorKind>) -> RuntimeConfig {
    RuntimeConfig {
        nprocs,
        calibrate: false,
        policy,
        store_path: Some(path.to_path_buf()),
        ..RuntimeConfig::default()
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A store-loaded plan solves **bit-exactly** like the freshly inspected
/// plan it was spilled from, for every executor policy and across random
/// patterns. The policy is pinned on both sides so summation order is
/// identical — this is the restart analogue of the codec round trip.
#[test]
fn store_loaded_plans_solve_bit_exactly_across_policies() {
    for seed in 0..3u64 {
        let f = factors(
            40 + seed as usize * 17,
            2 + seed as usize % 3,
            seed * 11 + 1,
        );
        let n = f.n();
        let b: Vec<f64> = (0..n).map(|i| 0.3 + (i % 13) as f64 * 0.071).collect();
        for kind in ExecutorKind::ALL {
            let path = tmp(&format!("roundtrip-{seed}-{kind:?}"));

            // Lifetime 1: inspect, compile, solve, spill.
            let rt = Runtime::new(cfg(&path, 2, Some(kind)));
            let mut x_cold = vec![0.0; n];
            rt.solve(&f, &b, &mut x_cold).expect("cold solve");
            assert_eq!(rt.stats().store_writes, 1, "seed {seed} {kind:?}: no spill");
            drop(rt); // joins the flusher; the artifact is durable now

            // Lifetime 2: the same pattern must come from the store.
            let rt = Runtime::new(cfg(&path, 2, Some(kind)));
            let mut x_store = vec![0.0; n];
            rt.solve(&f, &b, &mut x_store).expect("store-hit solve");
            let stats = rt.stats();
            assert_eq!(
                (stats.store_hits, stats.store_load_errors),
                (1, 0),
                "seed {seed} {kind:?}: plan was not served from the store"
            );
            assert_eq!(
                bits(&x_cold),
                bits(&x_store),
                "seed {seed} {kind:?}: store-loaded solve deviates from inspected solve"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Truncating the store file at **every** prefix length yields a working
/// runtime and a bit-exact answer — short files fail open (storeless),
/// mid-record cuts are repaired away at scan, and only the intact file
/// serves a store hit. Never a panic, never a wrong answer.
#[test]
fn every_truncation_of_the_store_falls_back_cold() {
    let f = factors(12, 2, 7);
    let n = f.n();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.05).collect();
    let policy = Some(ExecutorKind::Sequential);

    let seed_path = tmp("truncate-seed");
    let rt = Runtime::new(cfg(&seed_path, 1, policy));
    let mut reference = vec![0.0; n];
    rt.solve(&f, &b, &mut reference).expect("seed solve");
    drop(rt);
    let full = std::fs::read(&seed_path).expect("read store file");
    let _ = std::fs::remove_file(&seed_path);

    let path = tmp("truncate-cut");
    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).expect("write truncated store");
        let rt = Runtime::new(cfg(&path, 1, policy));
        let mut x = vec![0.0; n];
        rt.solve(&f, &b, &mut x)
            .expect("solve over truncated store");
        assert_eq!(
            bits(&reference),
            bits(&x),
            "cut {cut}/{}: answer deviates",
            full.len()
        );
        let s = rt.stats();
        if cut == full.len() {
            assert_eq!((s.store_hits, s.store_load_errors), (1, 0), "intact file");
        } else {
            // Anything shorter is cold one way or another: open failure,
            // scan repair, or a plain miss — all typed, all counted.
            assert_eq!(s.store_hits, 0, "cut {cut}: truncated store served a hit");
            assert!(
                s.store_misses + s.store_load_errors >= 1,
                "cut {cut}: fallback left no trace in the stats"
            );
        }
        drop(rt);
        let _ = std::fs::remove_file(&path);
    }
}

/// Flipping a bit inside the persisted payload is caught by the record
/// checksum: `get` answers a typed `Corrupt` error, and a runtime on the
/// same file counts a load error and re-inspects — bit-exact answer,
/// no panic.
#[test]
fn bit_flips_are_typed_errors_and_served_around() {
    let f = factors(12, 2, 19);
    let n = f.n();
    let b: Vec<f64> = (0..n).map(|i| 0.7 + i as f64 * 0.03).collect();
    let policy = Some(ExecutorKind::Sequential);

    let seed_path = tmp("corrupt-seed");
    let rt = Runtime::new(cfg(&seed_path, 1, policy));
    let mut reference = vec![0.0; n];
    rt.solve(&f, &b, &mut reference).expect("seed solve");
    let key = Runtime::solve_key(&f).as_u128();
    drop(rt);
    let full = std::fs::read(&seed_path).expect("read store file");
    let _ = std::fs::remove_file(&seed_path);

    // File layout: 12-byte header, 37-byte record header, then payload.
    let payload_start = 12 + 37;
    assert!(
        full.len() > payload_start + 8,
        "store file unexpectedly small"
    );
    let path = tmp("corrupt-flip");
    let mut corrupt_seen = 0;
    for (i, &pos) in [payload_start, payload_start + 7, full.len() - 3]
        .iter()
        .enumerate()
    {
        let mut bytes = full.clone();
        bytes[pos] ^= 1 << (i % 8);
        std::fs::write(&path, &bytes).expect("write corrupted store");

        // Store level: the checksum catches the flip lazily, at `get`.
        let store = PlanStore::open(&path).expect("scan accepts a checksummed lie");
        match store.get(key) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(!detail.is_empty());
                corrupt_seen += 1;
            }
            other => panic!("flip at {pos}: expected Corrupt, got {other:?}"),
        }
        drop(store);

        // Runtime level: typed error counted, answer served cold.
        let rt = Runtime::new(cfg(&path, 1, policy));
        let mut x = vec![0.0; n];
        rt.solve(&f, &b, &mut x)
            .expect("solve over corrupted store");
        assert_eq!(bits(&reference), bits(&x), "flip at {pos}: answer deviates");
        let s = rt.stats();
        assert!(
            s.store_load_errors >= 1,
            "flip at {pos}: corruption left no trace in the stats"
        );
        assert_eq!(s.store_hits, 0, "flip at {pos}: corrupted record served");
        drop(rt);
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(corrupt_seen, 3);
}

/// A store written by a future format version is rejected cleanly at
/// open — typed `Version` error from the store, storeless (but correct)
/// service from the runtime.
#[test]
fn version_bump_rejects_cleanly() {
    let f = factors(12, 2, 23);
    let n = f.n();
    let b = vec![1.0; n];
    let path = tmp("version-bump");
    let store = PlanStore::open(&path).expect("create store");
    store.put(42, vec![1, 2, 3]);
    store.flush();
    drop(store);

    // The version field lives at bytes 8..12, after the magic.
    let mut bytes = std::fs::read(&path).expect("read store file");
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).expect("write bumped store");

    match PlanStore::open(&path) {
        Err(StoreError::Version { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }

    let rt = Runtime::new(cfg(&path, 1, Some(ExecutorKind::Sequential)));
    assert!(rt.store().is_none(), "runtime adopted an unreadable store");
    assert_eq!(rt.stats().store_load_errors, 1);
    let mut x = vec![0.0; n];
    rt.solve(&f, &b, &mut x).expect("storeless solve");
    drop(rt);
    let _ = std::fs::remove_file(&path);
}

/// Many threads hammering `put` through the write-behind channel never
/// interleave record bytes: a fresh scan of the resulting file parses
/// cleanly (no repairs) and every accepted payload reads back bit-exact.
#[test]
fn concurrent_writers_never_interleave() {
    const THREADS: usize = 4;
    const PUTS: usize = 48;
    let path = tmp("concurrent");
    let store = PlanStore::open(&path).expect("create store");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = &store;
            scope.spawn(move || {
                for i in 0..PUTS {
                    let key = ((t as u128) << 64) | i as u128;
                    // Distinct, length-varying, key-derived payloads.
                    let payload: Vec<u8> = (0..(17 + (t * 31 + i * 7) % 90))
                        .map(|j| (t * 131 + i * 17 + j) as u8)
                        .collect();
                    // A full queue drops the write by design; nudge the
                    // flusher and retry so this test covers every key.
                    while !store.put(key, payload.clone()) {
                        store.flush();
                    }
                }
            });
        }
    });
    store.flush();
    drop(store);

    let store = PlanStore::open(&path).expect("reopen store");
    let s = store.stats();
    assert_eq!(s.entries, THREADS * PUTS, "records went missing");
    assert_eq!(
        (s.scan_repairs, s.truncated_bytes),
        (0, 0),
        "interleaved or torn records were repaired away"
    );
    for t in 0..THREADS {
        for i in 0..PUTS {
            let key = ((t as u128) << 64) | i as u128;
            let expect: Vec<u8> = (0..(17 + (t * 31 + i * 7) % 90))
                .map(|j| (t * 131 + i * 17 + j) as u8)
                .collect();
            let got = store.get(key).expect("get").expect("present");
            assert_eq!(got, expect, "thread {t} put {i}: payload deviates");
        }
    }
    drop(store);
    let _ = std::fs::remove_file(&path);
}

/// A record persisted by a **pre-supernode build** (plan-artifact
/// version 1) is refused at decode — the compiled layout bytes mean
/// something different now — and the runtime pays one counted cold
/// rebuild instead of misreading it. Emulated by rewriting the spilled
/// artifact's leading version tag; the store re-checksums on put, so
/// only the artifact version check can catch it.
#[test]
fn pre_bump_artifact_version_falls_back_cold() {
    let f = factors(16, 2, 5);
    let n = f.n();
    let b: Vec<f64> = (0..n).map(|i| 0.9 + i as f64 * 0.04).collect();
    let path = tmp("artifact-version-skew");
    let config = cfg(&path, 2, Some(ExecutorKind::Sequential));

    let rt = Runtime::new(config.clone());
    let mut reference = vec![0.0; n];
    rt.solve(&f, &b, &mut reference).expect("seed solve");
    drop(rt);

    // Payload layout: u64 artifact byte-length, then the artifact, whose
    // first field is the little-endian u32 version.
    let key = Runtime::solve_key(&f).as_u128();
    let store = PlanStore::open(&path).expect("open store");
    let mut payload = store.get(key).expect("get").expect("artifact present");
    payload[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(store.put(key, payload), "queue refused the rewrite");
    store.flush();
    drop(store);

    let rt = Runtime::new(config);
    let mut x = vec![0.0; n];
    rt.solve(&f, &b, &mut x).expect("solve over stale artifact");
    let stats = rt.stats();
    assert_eq!(stats.store_hits, 0, "a version-1 artifact served");
    assert_eq!(stats.store_load_errors, 1, "the refusal left no trace");
    assert_eq!(stats.solves.builds, 1, "no cold rebuild happened");
    assert_eq!(bits(&reference), bits(&x), "answer deviates after fallback");
    let _ = std::fs::remove_file(&path);
}

/// A persisted artifact whose **barrier plan has been hollowed out** —
/// every kept barrier flipped to elided — decodes cleanly through every
/// shape-and-bounds check in the store/codec stack: lengths agree,
/// indices are in bounds, checksums are freshly correct. Only the plan
/// verifier, which re-proves the cross-processor cover, can refuse it.
/// The runtime must do exactly that: count one load error and one verify
/// failure, pay the cold inspection, and still answer bit-exactly.
#[test]
fn verifier_refuses_a_store_artifact_with_dropped_barriers() {
    use rtpl::executor::compiled::CompiledPlan;
    use rtpl::inspector::{BarrierPlan, Schedule};
    use rtpl::sparse::wire::{WireReader, WireWriter};
    use rtpl::sparse::Csr;

    // A chain factor (row i's L depends only on row i-1) under a striped
    // 2-processor schedule: every dependence crosses processors, so the
    // minimal barrier plan keeps every boundary and dropping any of them
    // is a real race, not a formality.
    let n = 24;
    let mut indptr = vec![0usize];
    let (mut indices, mut vals) = (Vec::new(), Vec::new());
    for i in 0..n {
        if i > 0 {
            indices.push(i as u32 - 1);
            vals.push(0.4);
        }
        indptr.push(indices.len());
    }
    let l = Csr::try_new(n, n, indptr, indices, vals).expect("chain L");
    let mut iptr = vec![0usize];
    let (mut idx, mut v) = (Vec::new(), Vec::new());
    for i in 0..n {
        idx.push(i as u32);
        v.push(1.0);
        iptr.push(idx.len());
    }
    let u = Csr::try_new(n, n, iptr, idx, v).expect("diagonal U");
    let f = IluFactors { l, u };
    let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.03).collect();

    let path = tmp("verify-dropped-barrier");
    let mut config = cfg(&path, 2, Some(ExecutorKind::Sequential));
    config.sorting = rtpl::krylov::Sorting::LocalStriped;
    // Coalescing would merge the whole chain into one phase and leave no
    // barrier to drop; this test is about the per-wavefront cover.
    config.coalesce_factor = 0.0;

    // Lifetime 1: cold inspect, spill the honest artifact.
    let rt = Runtime::new(config.clone());
    let mut reference = vec![0.0; n];
    rt.solve(&f, &b, &mut reference).expect("seed solve");
    drop(rt);

    // Mutate the persisted payload through the public wire codec: decode
    // every component, re-encode with the forward sweep's barrier plan
    // zeroed. The record is re-checksummed on put, so nothing upstream of
    // the verifier can tell.
    let key = Runtime::solve_key(&f).as_u128();
    let store = PlanStore::open(&path).expect("open store");
    let payload = store.get(key).expect("get").expect("artifact present");
    let mut r = WireReader::new(&payload);
    let artifact = r.u8s_ref().expect("artifact bytes");
    let payload_rest = {
        let mut w = WireWriter::new();
        w.put_f64s(&r.f64s().expect("cost"));
        w.put_u64(r.u64().expect("host"));
        w.put_f64s(&r.f64s().expect("prior"));
        w.put_f64s(&r.f64s().expect("measured"));
        w.put_u64s(&r.u64s().expect("count"));
        w.into_bytes()
    };
    let mut a = WireReader::new(artifact);
    let mut w = WireWriter::new();
    w.put_u32(a.u32().expect("version"));
    w.put_u64(a.u64().expect("n"));
    w.put_u8(a.u8().expect("kind"));
    for sweep in ["fwd", "bwd"] {
        // Wavefront-coalescing stats (artifact v2): tag byte, then three
        // u64s when the sweep was coalesced.
        let tag = a
            .u8()
            .unwrap_or_else(|e| panic!("{sweep} coalesce tag: {e}"));
        w.put_u8(tag);
        if tag == 1 {
            for field in ["before", "after", "moved"] {
                w.put_u64(
                    a.u64()
                        .unwrap_or_else(|e| panic!("{sweep} phases {field}: {e}")),
                );
            }
        }
    }
    w.put_usizes32(&a.usizes32().expect("l indptr"));
    w.put_u32s(&a.u32s().expect("l indices"));
    w.put_usizes32(&a.usizes32().expect("u indptr"));
    w.put_u32s(&a.u32s().expect("u indices"));
    Schedule::decode(&mut a).expect("schedule L").encode(&mut w);
    let keep_l = BarrierPlan::decode(&mut a).expect("barriers L");
    assert!(
        keep_l.count() > 0,
        "the striped chain must keep barriers for this mutation to mean anything"
    );
    w.put_u8s(&vec![0u8; keep_l.len()]); // every boundary elided
    Schedule::decode(&mut a).expect("schedule U").encode(&mut w);
    BarrierPlan::decode(&mut a)
        .expect("barriers U")
        .encode(&mut w);
    CompiledPlan::decode(&mut a)
        .expect("fwd layout")
        .encode(&mut w);
    CompiledPlan::decode(&mut a)
        .expect("bwd layout")
        .encode(&mut w);
    a.finish().expect("artifact fully consumed");
    let mut out = WireWriter::new();
    out.put_u8s(&w.into_bytes());
    let mut mutated = out.into_bytes();
    mutated.extend_from_slice(&payload_rest);
    assert!(
        store.put(key, mutated),
        "write-behind queue refused the mutant"
    );
    store.flush();
    drop(store);

    // Lifetime 2: the mutant must be refused and served around, cold.
    let rt = Runtime::new(config);
    let mut x = vec![0.0; n];
    rt.solve(&f, &b, &mut x)
        .expect("solve over mutant artifact");
    let stats = rt.stats();
    assert_eq!(stats.store_hits, 0, "the mutant artifact was cached");
    assert_eq!(stats.store_load_errors, 1, "the refusal left no trace");
    assert!(
        stats.verify_failures >= 1,
        "the rejection must be the verifier's, not a codec accident"
    );
    assert_eq!(stats.solves.builds, 1, "no cold fallback happened");
    assert_eq!(bits(&reference), bits(&x), "answer deviates after fallback");
    let _ = std::fs::remove_file(&path);
}
