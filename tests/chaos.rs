//! Chaos harness: a loopback server under concurrent clients while a
//! fault thread arms and clears fail points at random — dropped accepts,
//! dying reads and writes, dropped store appends, panicking executor
//! bodies.
//!
//! The contract under chaos, per the failure-containment design:
//!
//! * every reply that *is* a solution is bit-exact with a local solve —
//!   faults may fail a request, they may never corrupt one;
//! * every failure a client observes is typed: a known error code, a
//!   `RetryAfter`, or a visibly dead connection (reconnect and retry) —
//!   never a silent wrong answer;
//! * the server itself survives: once the faults clear, it drains with
//!   `accepted == answered` and still serves;
//! * nothing hangs: a watchdog aborts the process if the run wedges.
//!
//! The fault schedule is driven by `CHAOS_SEED` (decimal, default
//! `900913`), so CI can pin one seed for reproducibility and probe others
//! cheaply.

use rtpl::failpoint;
use rtpl::runtime::{Runtime, RuntimeConfig};
use rtpl::server::proto::{err_code, Response};
use rtpl::server::{Client, Server, ServerConfig};
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::rng::SmallRng;
use rtpl::sparse::{ilu0, IluFactors};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 40;
/// Bound on reconnect-and-retry attempts per request; a healthy run needs
/// a handful, an unbounded loop would mask a hang.
const MAX_ATTEMPTS_PER_REQUEST: usize = 50;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(900_913)
}

fn reference_solve(f: &IluFactors, b: &[f64]) -> Vec<f64> {
    let rt = Runtime::new(RuntimeConfig {
        nprocs: 1,
        calibrate: false,
        ..RuntimeConfig::default()
    });
    let mut x = vec![0.0; f.n()];
    rt.solve(f, b, &mut x).unwrap();
    x
}

/// The fault palette: every site the containment layer defends. Modes are
/// kept sub-certain (`OneIn`) for the connection-level points so progress
/// stays possible while a point is armed.
const FAULTS: [(&str, u64); 5] = [
    ("server.accept", 3),
    ("server.read", 4),
    ("server.write", 4),
    ("store.write", 2),
    ("exec.body_panic", 5),
];

#[test]
fn chaos_faults_never_corrupt_and_always_answer() {
    let seed = chaos_seed();
    let store_path = std::env::temp_dir().join(format!("rtpl_chaos_{}.store", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let cfg = ServerConfig {
        runtime: RuntimeConfig {
            nprocs: 2,
            calibrate: false,
            store_path: Some(store_path.clone()),
            ..RuntimeConfig::default()
        },
        frame_timeout: Some(Duration::from_secs(5)),
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::spawn(cfg).unwrap());

    // Two patterns, fixed rhs each, references computed locally once.
    let problems: Vec<(IluFactors, Vec<f64>, Vec<f64>)> = [(7, 6), (6, 5)]
        .into_iter()
        .map(|(nx, ny)| {
            let f = ilu0(&laplacian_5pt(nx, ny)).unwrap();
            let b: Vec<f64> = (0..f.n()).map(|i| 1.0 + (i % 11) as f64 * 0.09).collect();
            let x = reference_solve(&f, &b);
            (f, b, x)
        })
        .collect();
    let problems = Arc::new(problems);

    // Watchdog: the whole run, including drain, must finish well within
    // this bound or the process dies loudly instead of wedging CI.
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for _ in 0..120 {
                std::thread::sleep(Duration::from_secs(1));
                if done.load(Ordering::SeqCst) {
                    return;
                }
            }
            eprintln!("chaos watchdog: run wedged (seed {seed}); aborting");
            std::process::abort();
        });
    }

    // The fault thread: random rounds of arm-some / clear-all.
    let stop_chaos = Arc::new(AtomicBool::new(false));
    let chaos = {
        let stop = Arc::clone(&stop_chaos);
        std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(seed);
            while !stop.load(Ordering::SeqCst) {
                for &(name, one_in) in &FAULTS {
                    if rng.gen_f64() < 0.5 {
                        failpoint::configure(name, failpoint::Mode::OneIn(one_in));
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
                failpoint::clear_all();
                std::thread::sleep(Duration::from_millis(5));
            }
            failpoint::clear_all();
        })
    };

    let solved = Arc::new(AtomicU64::new(0));
    let typed_failures = Arc::new(AtomicU64::new(0));
    let transport_failures = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            let problems = Arc::clone(&problems);
            let solved = Arc::clone(&solved);
            let typed_failures = Arc::clone(&typed_failures);
            let transport_failures = Arc::clone(&transport_failures);
            let mut rng = SmallRng::seed_from_u64(seed ^ (0xC11E47 + c as u64));
            std::thread::spawn(move || {
                let mut client: Option<Client> = None;
                for r in 0..REQUESTS_PER_CLIENT {
                    let (f, b, expect) = &problems[rng.gen_range_usize(0, problems.len())];
                    let key = Runtime::solve_key(f);
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        assert!(
                            attempts <= MAX_ATTEMPTS_PER_REQUEST,
                            "client {c} request {r}: no answer after {attempts} attempts \
                             (seed {seed})"
                        );
                        let conn = match client.as_mut() {
                            Some(conn) => conn,
                            None => match Client::connect(server.addr()) {
                                Ok(conn) => client.insert(conn),
                                Err(_) => {
                                    // Accept faulted: back off and retry.
                                    transport_failures.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_millis(2));
                                    continue;
                                }
                            },
                        };
                        // Mix warm (fingerprint) and cold (full) solves.
                        let warm = rng.gen_f64() < 0.5;
                        let resp = if warm {
                            conn.solve_by_fingerprint(key, b)
                        } else {
                            conn.solve(&f.l, &f.u, b)
                        };
                        match resp {
                            Ok(Response::Solved { x, .. }) => {
                                assert_eq!(
                                    &x, expect,
                                    "client {c} request {r}: corrupt solution under chaos \
                                     (seed {seed})"
                                );
                                solved.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Ok(Response::Error { code, message }) => {
                                // Every in-band failure must be typed.
                                assert!(
                                    [
                                        err_code::RUNTIME,
                                        err_code::UNKNOWN_PATTERN,
                                        err_code::DEADLINE_EXCEEDED,
                                        err_code::BODY_PANICKED,
                                        err_code::CIRCUIT_OPEN,
                                    ]
                                    .contains(&code),
                                    "client {c}: unexpected error code {code} ({message})"
                                );
                                typed_failures.fetch_add(1, Ordering::Relaxed);
                                if code == err_code::CIRCUIT_OPEN {
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                            }
                            Ok(Response::RetryAfter { retry_ms, .. }) => {
                                typed_failures.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(u64::from(retry_ms)));
                            }
                            Ok(other) => panic!("client {c}: unexpected response {other:?}"),
                            Err(_) => {
                                // The connection died (read/write fault):
                                // visible, not silent — reconnect.
                                transport_failures.fetch_add(1, Ordering::Relaxed);
                                client = None;
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("a chaos client panicked");
    }
    stop_chaos.store(true, Ordering::SeqCst);
    chaos.join().unwrap();
    failpoint::clear_all();

    // Faults are gone: a fresh connection is served, bit-exact.
    {
        let (f, b, expect) = &problems[0];
        let mut client = Client::connect(server.addr()).unwrap();
        match client.solve(&f.l, &f.u, b).unwrap() {
            Response::Solved { x, .. } => assert_eq!(&x, expect),
            other => panic!("post-chaos solve failed: {other:?}"),
        }
    }

    // And the drain settles clean: nothing accepted was left unanswered.
    server.drain();
    let stats = server.stats();
    assert_eq!(
        stats.accepted_jobs, stats.answered_jobs,
        "every accepted request must be answered (seed {seed})"
    );
    let total_solved = solved.load(Ordering::Relaxed);
    assert_eq!(
        total_solved,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "every request eventually solved (seed {seed})"
    );
    println!(
        "chaos run (seed {seed}): {total_solved} solved, {} typed failures, {} transport \
         failures, {} fail-point trips",
        typed_failures.load(Ordering::Relaxed),
        transport_failures.load(Ordering::Relaxed),
        failpoint::trips(),
    );
    server.shutdown().unwrap();
    done.store(true, Ordering::SeqCst);
    let _ = std::fs::remove_file(&store_path);
}
