//! Acceptance tests for the TCP front door (PR 6 tentpole): end-to-end
//! solves over loopback, backpressure under saturation, per-client
//! quotas, and graceful drain under concurrent load.
//!
//! The invariants, per the admission design:
//! * a saturated queue answers with typed `RetryAfter` — it never hangs
//!   the client and never buffers unboundedly;
//! * every request the server *accepts* is answered, even when a drain
//!   begins mid-load;
//! * solved values are bit-exact with a local sequential solve.

use rtpl::runtime::{Runtime, RuntimeConfig};
use rtpl::server::proto::{Request, Response, RetryReason, WarmLevel};
use rtpl::server::{Client, ClientError, Server, ServerConfig};
use rtpl::sparse::gen::laplacian_5pt;
use rtpl::sparse::{ilu0, IluFactors};
use rtpl::workload::requests::pattern_set;
use std::time::Duration;

fn test_server_config() -> ServerConfig {
    ServerConfig {
        runtime: RuntimeConfig {
            nprocs: 2,
            calibrate: false,
            ..RuntimeConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn test_factors() -> (IluFactors, Vec<f64>) {
    let f = ilu0(&laplacian_5pt(7, 6)).unwrap();
    let n = f.n();
    let b = (0..n).map(|i| 1.0 + (i % 13) as f64 * 0.07).collect();
    (f, b)
}

/// Local sequential reference through the same runtime code path the
/// server uses, so bit-exactness is a statement about the *wire*, not
/// about executor-policy agreement (that's `compiled_plans.rs`).
fn reference_solve(f: &IluFactors, b: &[f64]) -> Vec<f64> {
    let rt = Runtime::new(RuntimeConfig {
        nprocs: 1,
        calibrate: false,
        ..RuntimeConfig::default()
    });
    let mut x = vec![0.0; f.n()];
    rt.solve(f, b, &mut x).unwrap();
    x
}

/// Cold solve → warm check → fingerprint solve: the intended client flow,
/// with every answer bit-exact against a local solve.
#[test]
fn solve_warmcheck_fingerprint_flow_is_bit_exact() {
    let server = Server::spawn(test_server_config()).unwrap();
    let (f, b) = test_factors();
    let key = Runtime::solve_key(&f);
    let expect = reference_solve(&f, &b);

    let mut client = Client::connect(server.addr()).unwrap();
    // Cold: the pattern is unknown.
    match client.warm_check(key).unwrap() {
        Response::WarmStatus { level } => {
            assert_eq!(level, WarmLevel::Cold, "pattern warm before any solve")
        }
        other => panic!("{other:?}"),
    }
    // A fingerprint solve before registration is a typed error.
    match client.solve_by_fingerprint(key, &b).unwrap() {
        Response::Error { code, .. } => {
            assert_eq!(code, rtpl::server::proto::err_code::UNKNOWN_PATTERN)
        }
        other => panic!("{other:?}"),
    }
    // Ship the factors once.
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::Solved { x, .. } => assert_eq!(x, expect, "cold solve deviates"),
        other => panic!("{other:?}"),
    }
    // Now the pattern is warm and fingerprint solves work — from a
    // *different* connection too (server-side state, not per-conn).
    let mut second = Client::connect(server.addr()).unwrap();
    match second.warm_check(key).unwrap() {
        Response::WarmStatus { level } => {
            assert_eq!(level, WarmLevel::Memory, "pattern cold after a solve")
        }
        other => panic!("{other:?}"),
    }
    match second.solve_by_fingerprint(key, &b).unwrap() {
        Response::Solved { x, cached, .. } => {
            assert_eq!(x, expect, "warm solve deviates");
            assert!(
                cached,
                "second solve of the same pattern missed the plan cache"
            );
        }
        other => panic!("{other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.accepted_jobs, 2);
    assert_eq!(stats.answered_jobs, 2);
    let text = server.metrics_text();
    for needle in [
        "rtpl_server_answered_jobs 2",
        "rtpl_server_latency_solve_count 1",
        // 2: the pre-registration UNKNOWN_PATTERN rejection counts too.
        "rtpl_server_latency_solve_by_fingerprint_count 2",
        "rtpl_server_latency_warm_check_count 2",
        "rtpl_solve_cache_hits",
    ] {
        assert!(
            text.contains(needle),
            "metrics text missing {needle:?}:\n{text}"
        );
    }
    server.shutdown().unwrap();
}

/// Saturating a tiny queue yields typed `RetryAfter(QueueFull)` responses
/// — one answer per request, nothing hangs, and every accepted solve is
/// still answered bit-exactly.
#[test]
fn queue_saturation_rejects_with_retry_after() {
    let mut cfg = test_server_config();
    cfg.queue_depth = 2;
    cfg.client_inflight = 64; // quota out of the way: this test is about the queue
    cfg.gather_window = Duration::from_millis(40); // hold the queue full
    let server = Server::spawn(cfg).unwrap();
    let (f, b) = test_factors();
    let expect = reference_solve(&f, &b);
    let key = Runtime::solve_key(&f);

    let mut client = Client::connect(server.addr()).unwrap();
    // Register the pattern (and let the batch clear).
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::Solved { .. } => {}
        other => panic!("{other:?}"),
    }
    // Pipeline far more than the queue holds, without reading.
    let total = 16;
    for _ in 0..total {
        client
            .send(&Request::SolveByFingerprint { key, b: b.clone() })
            .unwrap();
    }
    let mut solved = 0;
    let mut rejected = 0;
    for _ in 0..total {
        match client.recv().unwrap().1 {
            Response::Solved { x, .. } => {
                assert_eq!(x, expect, "saturated solve deviates");
                solved += 1;
            }
            Response::RetryAfter { retry_ms, reason } => {
                assert_eq!(reason, RetryReason::QueueFull);
                assert!(retry_ms > 0);
                rejected += 1;
            }
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(solved + rejected, total, "an answer went missing");
    assert!(
        rejected > 0,
        "queue depth 2 never rejected {total} pipelined solves"
    );
    assert!(solved > 0, "backpressure starved everything");
    assert_eq!(server.stats().rejected_queue, rejected);
    server.shutdown().unwrap();
}

/// A client over its in-flight quota gets `RetryAfter(QuotaExceeded)`,
/// and honoring the suggested delay eventually lands every solve.
#[test]
fn quota_exceeded_is_typed_and_retryable() {
    let mut cfg = test_server_config();
    cfg.client_inflight = 1;
    cfg.gather_window = Duration::from_millis(20);
    let server = Server::spawn(cfg).unwrap();
    let (f, b) = test_factors();
    let key = Runtime::solve_key(&f);

    let mut client = Client::connect(server.addr()).unwrap();
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::Solved { .. } => {}
        other => panic!("{other:?}"),
    }
    // Two pipelined solves against a quota of one: the second must be
    // rejected with the quota reason (the queue has room).
    client
        .send(&Request::SolveByFingerprint { key, b: b.clone() })
        .unwrap();
    client
        .send(&Request::SolveByFingerprint { key, b: b.clone() })
        .unwrap();
    let mut kinds = Vec::new();
    for _ in 0..2 {
        match client.recv().unwrap().1 {
            Response::Solved { .. } => kinds.push("solved"),
            Response::RetryAfter { reason, .. } => {
                assert_eq!(reason, RetryReason::QuotaExceeded);
                kinds.push("rejected");
            }
            other => panic!("{other:?}"),
        }
    }
    kinds.sort_unstable();
    assert_eq!(kinds, ["rejected", "solved"]);
    // The polite path: retry on rejection until it lands.
    let (resp, _retries) = client
        .call_retrying(&Request::SolveByFingerprint { key, b: b.clone() })
        .unwrap();
    assert!(matches!(resp, Response::Solved { .. }));
    assert!(server.stats().rejected_quota >= 1);
    server.shutdown().unwrap();
}

/// Shutdown mid-load: every accepted request is answered (drain), late
/// requests are rejected as `Draining`, and the connection then closes
/// cleanly — clients are never left hanging.
#[test]
fn graceful_drain_answers_everything_accepted() {
    let mut cfg = test_server_config();
    cfg.gather_window = Duration::from_millis(10);
    let server = Server::spawn(cfg).unwrap();
    let (f, b) = test_factors();
    let expect = reference_solve(&f, &b);
    let key = Runtime::solve_key(&f);

    let mut client = Client::connect(server.addr()).unwrap();
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::Solved { .. } => {}
        other => panic!("{other:?}"),
    }
    // Pipeline a burst, give the reader a moment to admit some of it,
    // then shut the server down while work is still in flight.
    let burst = 12;
    for _ in 0..burst {
        client
            .send(&Request::SolveByFingerprint { key, b: b.clone() })
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(30));
    let shutdown = std::thread::spawn(move || {
        server.shutdown().unwrap();
        server
    });
    // Every request the server *read* gets exactly one answer — Solved
    // (accepted before the drain) or RetryAfter(Draining) — and then the
    // connection closes cleanly. Frames still in the socket buffer when
    // the server closes were never accepted, so fewer than `burst`
    // answers is legal; a hang or a garbage answer is not.
    let mut solved = 0;
    let mut draining = 0;
    loop {
        match client.recv() {
            Ok((_, Response::Solved { x, .. })) => {
                assert_eq!(x, expect, "drained solve deviates");
                solved += 1;
            }
            Ok((_, Response::RetryAfter { reason, .. })) => {
                assert_eq!(reason, RetryReason::Draining);
                draining += 1;
            }
            Ok((_, other)) => panic!("{other:?}"),
            Err(ClientError::Closed) | Err(ClientError::Io(_)) => break,
            Err(other) => panic!("{other:?}"),
        }
    }
    assert!(solved + draining <= burst);
    assert!(solved >= 1, "nothing was accepted before the drain");
    let server = shutdown.join().unwrap();
    let stats = server.stats();
    assert_eq!(
        stats.accepted_jobs, stats.answered_jobs,
        "drain left accepted jobs unanswered"
    );
    // Idempotent shutdown.
    server.shutdown().unwrap();
}

/// The wire-level `Shutdown` request drains and acknowledges — when the
/// server has opted in.
#[test]
fn wire_shutdown_drains_and_acks() {
    let mut cfg = test_server_config();
    cfg.allow_remote_shutdown = true;
    let server = Server::spawn(cfg).unwrap();
    let (f, b) = test_factors();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::Solved { .. } => {}
        other => panic!("{other:?}"),
    }
    match client.shutdown().unwrap() {
        Response::ShutdownAck => {}
        other => panic!("{other:?}"),
    }
    // Post-drain solves are rejected as Draining, not executed.
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::RetryAfter { reason, .. } => assert_eq!(reason, RetryReason::Draining),
        other => panic!("{other:?}"),
    }
    assert!(server.stats().rejected_draining >= 1);
    server.shutdown().unwrap();
}

/// By default any client can connect, so the unauthenticated wire
/// `Shutdown` must not put the server into its (irreversible) drain: it
/// is refused with a typed error and service continues.
#[test]
fn wire_shutdown_is_refused_unless_opted_in() {
    let server = Server::spawn(test_server_config()).unwrap();
    let (f, b) = test_factors();
    let expect = reference_solve(&f, &b);
    let mut client = Client::connect(server.addr()).unwrap();
    match client.shutdown().unwrap() {
        Response::Error { code, .. } => {
            assert_eq!(code, rtpl::server::proto::err_code::SHUTDOWN_DISABLED)
        }
        other => panic!("{other:?}"),
    }
    // The server is still fully serving — no drain happened.
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::Solved { x, .. } => assert_eq!(x, expect),
        other => panic!("{other:?}"),
    }
    assert_eq!(server.stats().rejected_draining, 0);
    server.shutdown().unwrap();
}

/// Re-shipping a pattern with new numeric values (refactorized factors on
/// an unchanged structure — a flow the runtime explicitly supports) must
/// solve against the *new* values, both for that request and for every
/// later `SolveByFingerprint`.
#[test]
fn reshipped_factors_replace_registered_values() {
    let server = Server::spawn(test_server_config()).unwrap();
    let (f, b) = test_factors();
    let key = Runtime::solve_key(&f);
    let mut refactored = IluFactors {
        l: f.l.clone(),
        u: f.u.clone(),
    };
    for v in refactored.l.data_mut() {
        *v *= 1.5;
    }
    for v in refactored.u.data_mut() {
        *v *= 0.75;
    }
    assert_eq!(
        Runtime::solve_key(&refactored),
        key,
        "scaling values must not change the pattern"
    );
    let expect_old = reference_solve(&f, &b);
    let expect_new = reference_solve(&refactored, &b);
    assert_ne!(expect_old, expect_new);

    let mut client = Client::connect(server.addr()).unwrap();
    match client.solve(&f.l, &f.u, &b).unwrap() {
        Response::Solved { x, .. } => assert_eq!(x, expect_old),
        other => panic!("{other:?}"),
    }
    match client.solve(&refactored.l, &refactored.u, &b).unwrap() {
        Response::Solved { x, .. } => {
            assert_eq!(x, expect_new, "re-shipped Solve answered with stale values")
        }
        other => panic!("{other:?}"),
    }
    match client.solve_by_fingerprint(key, &b).unwrap() {
        Response::Solved { x, .. } => assert_eq!(
            x, expect_new,
            "fingerprint solve served first-shipped values after a re-ship"
        ),
        other => panic!("{other:?}"),
    }
    server.shutdown().unwrap();
}

/// The factor registry is bounded: shipping more patterns than
/// `registry_capacity` evicts the least-recently-used one, which then
/// answers `UNKNOWN_PATTERN` (the client's cue to re-ship) — server
/// memory never grows with the number of distinct patterns ever seen.
#[test]
fn registry_is_bounded_and_evicts_lru() {
    let mut cfg = test_server_config();
    cfg.registry_capacity = 2;
    let server = Server::spawn(cfg).unwrap();
    let factors: Vec<IluFactors> = pattern_set(3, 6, 55)
        .iter()
        .map(|m| IluFactors {
            l: m.strict_lower(),
            u: m.transpose().upper(),
        })
        .collect();
    let n = factors[0].n();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.11).collect();

    let mut client = Client::connect(server.addr()).unwrap();
    for f in &factors {
        match client.solve(&f.l, &f.u, &b).unwrap() {
            Response::Solved { .. } => {}
            other => panic!("{other:?}"),
        }
    }
    // The third pattern evicted the least-recently-used (the first).
    let k0 = Runtime::solve_key(&factors[0]);
    match client.warm_check(k0).unwrap() {
        // No store attached: eviction falls all the way back to cold.
        Response::WarmStatus { level } => {
            assert_eq!(level, WarmLevel::Cold, "evicted pattern reported warm")
        }
        other => panic!("{other:?}"),
    }
    match client.solve_by_fingerprint(k0, &b).unwrap() {
        Response::Error { code, .. } => {
            assert_eq!(code, rtpl::server::proto::err_code::UNKNOWN_PATTERN)
        }
        other => panic!("{other:?}"),
    }
    // The two most recent patterns still serve by fingerprint.
    for f in &factors[1..] {
        match client
            .solve_by_fingerprint(Runtime::solve_key(f), &b)
            .unwrap()
        {
            Response::Solved { x, .. } => assert_eq!(x, reference_solve(f, &b)),
            other => panic!("{other:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.registered_patterns, 2);
    assert_eq!(stats.registry_evictions, 1);
    server.shutdown().unwrap();
}

/// Several clients hammering concurrently: all answers arrive, all solved
/// values are bit-exact, and cross-client batching shows up in the
/// runtime's batch counters.
#[test]
fn concurrent_clients_are_answered_and_bit_exact() {
    let mut cfg = test_server_config();
    cfg.gather_window = Duration::from_millis(5);
    let server = Server::spawn(cfg).unwrap();
    let patterns = pattern_set(3, 6, 55);
    let factors: Vec<IluFactors> = patterns
        .iter()
        .map(|m| IluFactors {
            l: m.strict_lower(),
            u: m.transpose().upper(),
        })
        .collect();
    let n = factors[0].n();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.11).collect();
    let expects: Vec<Vec<f64>> = factors.iter().map(|f| reference_solve(f, &b)).collect();

    let addr = server.addr();
    std::thread::scope(|scope| {
        for c in 0..4usize {
            let factors = &factors;
            let expects = &expects;
            let b = &b;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..12 {
                    let p = (c + i) % factors.len();
                    let (resp, _) = client
                        .call_retrying(&Request::Solve {
                            l: factors[p].l.clone(),
                            u: factors[p].u.clone(),
                            b: b.clone(),
                        })
                        .unwrap();
                    match resp {
                        Response::Solved { x, .. } => {
                            assert_eq!(x, expects[p], "client {c} req {i} deviates")
                        }
                        other => panic!("client {c} req {i}: {other:?}"),
                    }
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.accepted_jobs, 48);
    assert_eq!(stats.answered_jobs, 48);
    let rt = server.runtime().stats();
    assert!(rt.batches > 0);
    assert_eq!(rt.batch_jobs, 48);
    server.shutdown().unwrap();
}
