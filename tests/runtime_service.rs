//! Service-level acceptance tests for `rtpl-runtime`: many clients, a
//! Zipf-distributed mix of patterns, one shared `Runtime`.

use rtpl::krylov::ExecutorKind;
use rtpl::runtime::{Runtime, RuntimeConfig};
use rtpl::sparse::ilu::IluFactors;
use rtpl::sparse::Csr;
use rtpl::workload::{pattern_set, ZipfMix};
use std::sync::atomic::{AtomicU64, Ordering};

/// Builds solvable factors from a synthetic unit-lower-triangular
/// dependency matrix: `L` is its strict lower triangle, `U` its transpose's
/// upper triangle (unit diagonal) — two structurally distinct sweeps per
/// pattern, no factorization required.
fn factors_from_pattern(m: &Csr) -> IluFactors {
    IluFactors {
        l: m.strict_lower(),
        u: m.transpose().upper(),
    }
}

fn rhs(n: usize, salt: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + ((i * 31 + salt * 7) % 101) as f64 * 0.013)
        .collect()
}

/// The headline acceptance test: ≥ 8 threads solving a Zipf mix of ≥ 32
/// distinct patterns through one `Runtime` produce bit-exact results vs.
/// the sequential reference, with hit-rate > 0.9 and exactly one plan
/// construction per distinct fingerprint.
#[test]
fn concurrent_zipf_mix_is_bit_exact_cached_and_built_once() {
    const PATTERNS: usize = 32;
    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 64;

    let patterns = pattern_set(PATTERNS, 12, 2026);
    let factors: Vec<IluFactors> = patterns.iter().map(factors_from_pattern).collect();
    let n = factors[0].n();

    // Sequential reference, bit-exact target: the same per-row arithmetic
    // the parallel executors perform, run on the sequential executor.
    let reference: Vec<Vec<f64>> = {
        let rt_seq = Runtime::new(RuntimeConfig {
            nprocs: 1,
            calibrate: false,
            policy: Some(ExecutorKind::Sequential),
            ..RuntimeConfig::default()
        });
        factors
            .iter()
            .enumerate()
            .map(|(id, f)| {
                let b = rhs(n, id);
                let mut x = vec![0.0; n];
                rt_seq.solve(f, &b, &mut x).unwrap();
                x
            })
            .collect()
    };

    let rt = Runtime::new(RuntimeConfig {
        nprocs: 2,
        shards: 8,
        capacity: 2 * PATTERNS, // no evictions in this test
        calibrate: false,
        ..RuntimeConfig::default()
    });

    let mix = ZipfMix::new(PATTERNS, 1.1);
    let solved = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rt = &rt;
            let factors = &factors;
            let reference = &reference;
            let mix = &mix;
            let solved = &solved;
            scope.spawn(move || {
                // Every thread touches all ranks once (shuffled), then
                // draws from the Zipf tail — the steady-state mix.
                let stream = mix.stream_covering(REQUESTS_PER_THREAD, t as u64);
                let mut x = vec![0.0; n];
                for id in stream {
                    let b = rhs(n, id);
                    rt.solve(&factors[id], &b, &mut x).unwrap();
                    assert_eq!(
                        x, reference[id],
                        "thread {t}: pattern {id} deviates from the sequential reference"
                    );
                    solved.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    assert_eq!(solved.load(Ordering::Relaxed), total);
    let stats = rt.stats();
    assert_eq!(
        stats.solves.builds, PATTERNS as u64,
        "exactly one plan construction per distinct fingerprint"
    );
    assert_eq!(stats.solves.evictions, 0);
    assert_eq!(stats.solves.hits + stats.solves.misses, total);
    assert!(
        stats.solves.hit_rate() > 0.9,
        "hit rate {:.3} must exceed 0.9",
        stats.solves.hit_rate()
    );
    assert_eq!(stats.policy_runs.iter().sum::<u64>(), total);
    // The service never needs more pools than concurrently active clients.
    assert!(stats.pools_created <= THREADS as u64);
}

/// Same-pattern requests no longer serialize (PR 3): a cached entry holds
/// one immutable compiled plan and leases per-run scratches, so two
/// threads solving the same fingerprint overlap. The assertion is
/// **lease-counter based, not timing based**: `SolveOutcome::concurrent`
/// (and `RuntimeStats::peak_same_pattern`) report how many requests were
/// in flight on the entry when a solve started — under the old per-entry
/// mutex that could never exceed 1. Results stay bit-exact throughout.
#[test]
fn same_pattern_requests_overlap_and_stay_bit_exact() {
    const THREADS: usize = 4;
    const PER_ROUND: usize = 24;
    const MAX_ROUNDS: usize = 50;

    // One big pattern so each solve is long enough for the scheduler to
    // interleave threads even on a single hardware core.
    let patterns = pattern_set(1, 90, 4);
    let f = factors_from_pattern(&patterns[0]);
    let n = f.n();
    let rt = Runtime::new(RuntimeConfig {
        nprocs: 1,
        calibrate: false,
        policy: Some(ExecutorKind::Sequential),
        ..RuntimeConfig::default()
    });
    let b = rhs(n, 5);
    let mut reference = vec![0.0; n];
    rt.solve(&f, &b, &mut reference).unwrap();

    let mut peak = 0u64;
    for _ in 0..MAX_ROUNDS {
        let round_peak = AtomicU64::new(0);
        let start = std::sync::Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let rt = &rt;
                let f = &f;
                let b = &b;
                let reference = &reference;
                let start = &start;
                let round_peak = &round_peak;
                scope.spawn(move || {
                    let mut x = vec![0.0; n];
                    start.wait();
                    for _ in 0..PER_ROUND {
                        let out = rt.solve(f, b, &mut x).unwrap();
                        assert_eq!(&x, reference, "concurrent solve deviates");
                        round_peak.fetch_max(out.concurrent, Ordering::Relaxed);
                    }
                });
            }
        });
        peak = peak.max(round_peak.load(Ordering::Relaxed));
        if peak >= 2 {
            break;
        }
    }
    assert!(
        peak >= 2,
        "no overlap observed on the hot pattern: with leasable scratches \
         two of {THREADS} threads x {PER_ROUND} solves x {MAX_ROUNDS} rounds \
         must overlap at least once (peak = {peak})"
    );
    let stats = rt.stats();
    assert!(stats.peak_same_pattern >= 2);
    assert!(
        stats.scratches_created >= 2,
        "overlap must have forced a second scratch (created = {})",
        stats.scratches_created
    );
    assert_eq!(stats.solves.builds, 1, "still exactly one plan build");
}

/// An LRU-evicted entry whose `RunScratch` is still leased must stay
/// valid until the lease drops — deterministic, cache-level version:
/// hold a slot and a lease, force the eviction, keep using both.
#[test]
fn evicted_entry_with_inflight_lease_stays_valid_until_drop() {
    use rtpl::runtime::pools::LeasePool;
    use rtpl::runtime::PlanCache;
    use rtpl::sparse::PatternFingerprint;
    let fp = |i: usize| PatternFingerprint::of_structure(1, i + 1, &[0, 0], &[]);
    let cache: PlanCache<LeasePool<Vec<f64>>> = PlanCache::new(1, 1);
    let slot = cache.get_or_build(fp(0), || Ok(LeasePool::new())).unwrap();
    let (mut scratch, info) = slot.get().lease(|| vec![1.0; 4]);
    assert!(info.created);
    // Capacity 1: admitting a second pattern evicts the first *while its
    // scratch is leased*.
    cache.get_or_build(fp(1), || Ok(LeasePool::new())).unwrap();
    assert_eq!(cache.stats().evictions, 1);
    assert!(!cache.contains(fp(0)), "entry 0 is evicted");
    // Eviction un-caches, never invalidates: the entry lives through the
    // held Arc, the scratch through its lease. Both stay fully usable.
    scratch[0] = 42.0;
    assert_eq!(scratch.len(), 4);
    drop(scratch);
    assert_eq!(slot.get().created(), 1, "scratch returned to its pool");
    // The evicted pattern rebuilds on the next request — correct, just a
    // cold start.
    let rebuilt = cache.get_or_build(fp(0), || Ok(LeasePool::new())).unwrap();
    assert_eq!(cache.stats().builds, 3);
    assert!(!std::sync::Arc::ptr_eq(&slot, &rebuilt));
}

/// The same property end-to-end under concurrency: one thread hammers a
/// hot pattern while another floods a capacity-1 cache with distinct
/// patterns, evicting the hot entry out from under in-flight solves.
/// Every result must stay bit-exact; nothing may panic or corrupt.
#[test]
fn eviction_under_concurrent_solves_keeps_serving_bit_exact() {
    let hot = factors_from_pattern(&pattern_set(1, 40, 77)[0]);
    let churn: Vec<IluFactors> = pattern_set(4, 12, 33)
        .iter()
        .map(factors_from_pattern)
        .collect();
    // Bit-exact references from a sequential-policy runtime.
    let rt_seq = Runtime::new(RuntimeConfig {
        nprocs: 1,
        calibrate: false,
        policy: Some(ExecutorKind::Sequential),
        ..RuntimeConfig::default()
    });
    let hot_b = rhs(hot.n(), 1);
    let mut hot_ref = vec![0.0; hot.n()];
    rt_seq.solve(&hot, &hot_b, &mut hot_ref).unwrap();
    let churn_refs: Vec<Vec<f64>> = churn
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let b = rhs(f.n(), i);
            let mut x = vec![0.0; f.n()];
            rt_seq.solve(f, &b, &mut x).unwrap();
            x
        })
        .collect();

    let rt = Runtime::new(RuntimeConfig {
        shards: 1,
        capacity: 1,
        nprocs: 2,
        calibrate: false,
        policy: Some(ExecutorKind::Sequential),
        ..RuntimeConfig::default()
    });
    std::thread::scope(|scope| {
        let rt = &rt;
        let (hot, hot_b, hot_ref) = (&hot, &hot_b, &hot_ref);
        scope.spawn(move || {
            let mut x = vec![0.0; hot.n()];
            for _ in 0..30 {
                rt.solve(hot, hot_b, &mut x).unwrap();
                assert_eq!(&x, hot_ref, "hot solve deviates after eviction");
            }
        });
        let (churn, churn_refs) = (&churn, &churn_refs);
        scope.spawn(move || {
            let mut x = vec![0.0; churn[0].n()];
            for round in 0..20 {
                for (i, f) in churn.iter().enumerate() {
                    let b = rhs(f.n(), i);
                    rt.solve(f, &b, &mut x).unwrap();
                    assert_eq!(&x, &churn_refs[i], "churn solve deviates (round {round})");
                }
            }
        });
    });
    let stats = rt.stats();
    assert!(
        stats.solves.evictions >= 4,
        "capacity 1 under 5 patterns must evict constantly (evictions = {})",
        stats.solves.evictions
    );
}

/// The adaptive selector settles: after a steady stream on one pattern,
/// the dominant policy accounts for the overwhelming majority of runs
/// (exploration is bounded to at most one run per candidate arm).
#[test]
fn adaptive_selector_settles_on_a_dominant_policy() {
    let patterns = pattern_set(1, 16, 7);
    let f = factors_from_pattern(&patterns[0]);
    let n = f.n();
    let rt = Runtime::new(RuntimeConfig {
        nprocs: 2,
        calibrate: false,
        ..RuntimeConfig::default()
    });
    let b = rhs(n, 0);
    let mut x = vec![0.0; n];
    const RUNS: u64 = 40;
    for _ in 0..RUNS {
        rt.solve(&f, &b, &mut x).unwrap();
    }
    let stats = rt.stats();
    let dominant = stats.runs_for(stats.dominant_policy());
    // 5 candidate arms ⇒ at most 4 non-dominant exploration runs.
    assert!(
        dominant >= RUNS - 4,
        "dominant policy ran {dominant}/{RUNS} times; policy_runs = {:?}",
        stats.policy_runs
    );
}

/// Cold → warm amortization on a single pattern: a cached request performs
/// no inspection, so the steady-state requests must be far cheaper than
/// the first. (The bench binary measures this precisely; here we only
/// guard the mechanism with a loose factor.)
#[test]
fn warm_requests_skip_inspection() {
    let patterns = pattern_set(1, 24, 11);
    let f = factors_from_pattern(&patterns[0]);
    let n = f.n();
    let rt = Runtime::new(RuntimeConfig {
        nprocs: 2,
        calibrate: false,
        policy: Some(ExecutorKind::SelfExecuting),
        ..RuntimeConfig::default()
    });
    let b = rhs(n, 3);
    let mut x = vec![0.0; n];

    let t0 = std::time::Instant::now();
    let cold = rt.solve(&f, &b, &mut x).unwrap();
    let cold_ns = t0.elapsed().as_nanos();
    assert!(!cold.cached);

    let mut warm_best = u128::MAX;
    for _ in 0..20 {
        let t1 = std::time::Instant::now();
        let warm = rt.solve(&f, &b, &mut x).unwrap();
        warm_best = warm_best.min(t1.elapsed().as_nanos());
        assert!(warm.cached);
    }
    assert!(
        warm_best * 2 < cold_ns,
        "warm {warm_best} ns not clearly cheaper than cold {cold_ns} ns"
    );
}
