//! Acceptance tests for the wire codec (PR 6 satellite): a property sweep
//! over randomly generated matrices and payloads. Round trips must be
//! **bit-exact**; truncated, corrupted, or version-skewed bytes must come
//! back as typed errors — never panics, never garbage values.

use rtpl::server::proto::{self, ProtoError, Request, Response, RetryReason, WIRE_VERSION};
use rtpl::sparse::gen::random_lower;
use rtpl::sparse::rng::SmallRng;
use rtpl::sparse::wire::{WireError, WireReader, WireWriter};
use rtpl::sparse::PatternFingerprint;

fn random_rhs(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| {
            // Mix magnitudes, signs, and the awkward cases.
            match rng.gen_range_usize(0, 8) {
                0 => -0.0,
                1 => f64::MIN_POSITIVE / 2.0, // subnormal
                2 => 1e300,
                3 => -1e-300,
                _ => rng.gen_range_f64(-1e3, 1e3),
            }
        })
        .collect()
}

/// Random CSR matrices + vectors + fingerprints round-trip bit-exactly
/// through the raw codec, across many seeds.
#[test]
fn random_payloads_round_trip_bit_exactly() {
    let mut rng = SmallRng::seed_from_u64(0xC0DEC);
    for seed in 0..20u64 {
        let n = 8 + (seed as usize % 5) * 13;
        let m = random_lower(n, 1 + seed as usize % 4, seed * 7 + 1);
        let b = random_rhs(&mut rng, n);
        let fp = PatternFingerprint::from_halves(rng.next_u64(), rng.next_u64());

        let mut w = WireWriter::new();
        w.put_csr(&m);
        w.put_f64s(&b);
        w.put_fingerprint(fp);
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        let m2 = r.csr().unwrap();
        let b2 = r.f64s().unwrap();
        let fp2 = r.fingerprint().unwrap();
        r.finish().unwrap();

        assert_eq!(m, m2, "seed {seed}: matrix round trip deviates");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&b), bits(&b2), "seed {seed}: rhs bits deviate");
        assert_eq!(fp, fp2, "seed {seed}: fingerprint deviates");
    }
}

/// Every request kind round-trips through the protocol framing with its
/// id intact, over random payloads.
#[test]
fn protocol_messages_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xFEED);
    for seed in 0..8u64 {
        let m = random_lower(30, 3, seed + 5);
        let b = random_rhs(&mut rng, 30);
        let key = PatternFingerprint::from_halves(rng.next_u64(), rng.next_u64());
        let reqs = [
            Request::Solve {
                l: m.strict_lower(),
                u: m.transpose().upper(),
                b: b.clone(),
            },
            Request::WarmCheck { key },
            Request::SolveByFingerprint { key, b: b.clone() },
            Request::Stats,
            Request::Shutdown,
        ];
        for (i, req) in reqs.iter().enumerate() {
            let id = rng.next_u64();
            let bytes = proto::encode_request(id, req);
            let (id2, req2) = proto::decode_request(&bytes).unwrap();
            assert_eq!(id, id2, "seed {seed} kind {i}: id deviates");
            assert_eq!(*req, req2, "seed {seed} kind {i}: request deviates");
        }
        let resps = [
            Response::Solved {
                cached: seed % 2 == 0,
                policy: (seed % 5) as u8,
                x: b.clone(),
            },
            Response::RetryAfter {
                retry_ms: 2,
                reason: RetryReason::QueueFull,
            },
            Response::StatsText {
                text: format!("rtpl_batches {seed}\n"),
            },
        ];
        for resp in &resps {
            let bytes = proto::encode_response(7, resp);
            let (_, resp2) = proto::decode_response(&bytes).unwrap();
            assert_eq!(*resp, resp2, "seed {seed}: response deviates");
        }
    }
}

/// Truncating a valid frame at **every** prefix length yields a typed
/// error — `Truncated` from the codec or a protocol error — never a panic
/// and never a silently short decode.
#[test]
fn every_truncation_is_a_typed_error() {
    let m = random_lower(24, 3, 42);
    let req = Request::Solve {
        l: m.strict_lower(),
        u: m.transpose().upper(),
        b: (0..24).map(|i| i as f64 * 0.3).collect(),
    };
    let bytes = proto::encode_request(9, &req);
    for cut in 0..bytes.len() {
        match proto::decode_request(&bytes[..cut]) {
            Ok(_) => panic!("decode succeeded on a {cut}-byte prefix of {}", bytes.len()),
            Err(ProtoError::Wire(WireError::Truncated { needed, have })) => {
                assert!(
                    have < needed,
                    "cut {cut}: nonsense Truncated {have}/{needed}"
                );
            }
            Err(_) => {} // version/kind/shape errors are equally acceptable
        }
    }
}

/// Flipping bytes inside the structural sections is rejected by CSR
/// validation or count guards — typed `Invalid`/`Truncated`, not a panic.
#[test]
fn corrupted_structure_is_rejected() {
    let m = random_lower(20, 3, 17);
    let req = Request::Solve {
        l: m.strict_lower(),
        u: m.transpose().upper(),
        b: vec![1.0; 20],
    };
    let clean = proto::encode_request(3, &req);
    assert!(proto::decode_request(&clean).is_ok());
    let mut rng = SmallRng::seed_from_u64(0xBAD);
    let mut rejected = 0;
    for _ in 0..200 {
        let mut bytes = clean.clone();
        // Corrupt somewhere after the header, in the matrix sections
        // (the tail of the payload is rhs values, where any bits are
        // legal f64s).
        let pos = rng.gen_range_usize(10, bytes.len() * 2 / 3);
        bytes[pos] ^= 1 << rng.gen_range_usize(0, 8);
        match proto::decode_request(&bytes) {
            // A flip can still decode (a value byte, or an index nudged to
            // another valid column — the codec carries no checksum); what
            // matters is that whatever decodes is *valid*, with the
            // untouched id, and invalid structure is a typed error.
            Ok((id, _)) => assert_eq!(id, 3),
            Err(_) => rejected += 1,
        }
    }
    assert!(rejected > 0, "no corruption was ever detected");
}

/// A frame with the wrong version byte is rejected before any payload is
/// interpreted.
#[test]
fn version_mismatch_is_rejected() {
    let mut bytes = proto::encode_request(1, &Request::Stats);
    assert_eq!(bytes[0], WIRE_VERSION);
    bytes[0] = WIRE_VERSION + 1;
    match proto::decode_request(&bytes) {
        Err(ProtoError::Version { expected, found }) => {
            assert_eq!(expected, WIRE_VERSION);
            assert_eq!(found, WIRE_VERSION + 1);
        }
        other => panic!("expected version error, got {other:?}"),
    }
}

/// The codec's count prefixes are validated against the bytes actually
/// present before any allocation happens — a hostile length can't OOM.
#[test]
fn absurd_counts_never_allocate() {
    let mut w = WireWriter::new();
    w.put_u64(u64::MAX); // claimed vector length
    let bytes = w.into_bytes();
    let mut r = WireReader::new(&bytes);
    match r.f64s() {
        Err(WireError::Truncated { needed, have }) => assert!(have < needed),
        Err(WireError::Invalid(_)) => {} // count * width overflowed — equally typed
        other => panic!("expected a typed error, got {other:?}"),
    }
}
