//! Acceptance tests for the batched `Job` front door: mixed solve/loop
//! batches through one `Runtime`, fingerprint grouping, per-job failure
//! isolation, and DoConsider-spec caching.

use rtpl::executor::{ExecPolicy, WorkerPool};
use rtpl::inspector::DepGraph;
use rtpl::krylov::ExecutorKind;
use rtpl::prelude::{LoopBody, ValueSource};
use rtpl::runtime::{Job, JobOutcome, LoopSpec, NoBody, Runtime, RuntimeConfig};
use rtpl::sparse::ilu::IluFactors;
use rtpl::sparse::Csr;
use rtpl::workload::{pattern_set, RequestKind, ZipfMix};
use rtpl::DoConsider;

fn factors_from_pattern(m: &Csr) -> IluFactors {
    IluFactors {
        l: m.strict_lower(),
        u: m.transpose().upper(),
    }
}

fn rhs(n: usize, salt: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + ((i * 29 + salt * 13) % 97) as f64 * 0.017)
        .collect()
}

fn test_cfg() -> RuntimeConfig {
    RuntimeConfig {
        nprocs: 2,
        calibrate: false,
        ..RuntimeConfig::default()
    }
}

/// The linear-recurrence body, for checking `Job::LinearLoop` against the
/// generic `PlannedLoop` path: `x(i) = rhs(i) − Σ v_k·x(dep_k)` with
/// coefficients in adjacency order.
struct LinearBody<'a> {
    graph: &'a DepGraph,
    vals: &'a [f64],
    rhs: &'a [f64],
    offsets: Vec<usize>,
}

impl<'a> LinearBody<'a> {
    fn new(graph: &'a DepGraph, vals: &'a [f64], rhs: &'a [f64]) -> Self {
        let mut offsets = Vec::with_capacity(graph.n() + 1);
        let mut pos = 0;
        offsets.push(0);
        for i in 0..graph.n() {
            pos += graph.deps(i).len();
            offsets.push(pos);
        }
        LinearBody {
            graph,
            vals,
            rhs,
            offsets,
        }
    }
}

impl LoopBody for LinearBody<'_> {
    fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
        let mut acc = self.rhs[i];
        for (k, &d) in self.graph.deps(i).iter().enumerate() {
            acc -= self.vals[self.offsets[i] + k] * src.get(d as usize);
        }
        acc
    }
}

/// The headline batch test: a Zipf-mixed batch of solves and linear loop
/// jobs through `submit_batch` is bit-exact per job with the sequential
/// one-at-a-time front doors, groups same-fingerprint jobs, and serves a
/// repeat batch entirely from cache.
#[test]
fn mixed_batch_is_bit_exact_grouped_and_cached() {
    const SOLVE_PATTERNS: usize = 6;
    const LOOP_PATTERNS: usize = 4;
    const REQUESTS: usize = 96;

    let solve_mats = pattern_set(SOLVE_PATTERNS, 10, 2026);
    let factors: Vec<IluFactors> = solve_mats.iter().map(factors_from_pattern).collect();
    let loop_mats = pattern_set(LOOP_PATTERNS, 9, 4052);
    let lowers: Vec<Csr> = loop_mats.iter().map(|m| m.strict_lower()).collect();
    let specs: Vec<LoopSpec> = lowers
        .iter()
        .map(|l| DoConsider::from_lower_triangular(l).unwrap().into_spec())
        .collect();
    let ns = factors[0].n();
    let nl = lowers[0].nrows();

    let mix = ZipfMix::new(SOLVE_PATTERNS.max(LOOP_PATTERNS), 1.1);
    let stream: Vec<_> = mix
        .mixed_stream(REQUESTS, 0.3, 7)
        .into_iter()
        .map(|r| match r.kind {
            RequestKind::Solve => (r.kind, r.rank % SOLVE_PATTERNS),
            RequestKind::Loop => (r.kind, r.rank % LOOP_PATTERNS),
        })
        .collect();

    // Per-request inputs (shared) and expected outputs via the sequential
    // one-at-a-time front doors on a fresh runtime.
    let solve_bs: Vec<Vec<f64>> = (0..SOLVE_PATTERNS).map(|i| rhs(ns, i)).collect();
    let loop_rhs: Vec<Vec<f64>> = (0..LOOP_PATTERNS).map(|i| rhs(nl, 100 + i)).collect();
    let rt_seq = Runtime::new(test_cfg());
    let expected: Vec<Vec<f64>> = stream
        .iter()
        .map(|&(kind, rank)| match kind {
            RequestKind::Solve => {
                let mut x = vec![0.0; ns];
                rt_seq
                    .solve(&factors[rank], &solve_bs[rank], &mut x)
                    .unwrap();
                x
            }
            RequestKind::Loop => {
                let mut out = vec![0.0; nl];
                rt_seq
                    .run_linear(&specs[rank], lowers[rank].data(), &loop_rhs[rank], &mut out)
                    .unwrap();
                out
            }
        })
        .collect();

    let rt = Runtime::new(test_cfg());
    let mut outs: Vec<Vec<f64>> = stream
        .iter()
        .map(|&(kind, _)| vec![0.0; if kind == RequestKind::Solve { ns } else { nl }])
        .collect();
    let jobs: Vec<Job> = stream
        .iter()
        .zip(outs.iter_mut())
        .map(|(&(kind, rank), out)| match kind {
            RequestKind::Solve => Job::solve(&factors[rank], &solve_bs[rank], out),
            RequestKind::Loop => {
                Job::linear(&specs[rank], lowers[rank].data(), &loop_rhs[rank], out)
            }
        })
        .collect();
    let distinct: std::collections::HashSet<_> = stream.iter().copied().collect();

    let outcome = rt.submit_batch(jobs);
    assert_eq!(outcome.jobs.len(), REQUESTS);
    assert_eq!(outcome.ok_count(), REQUESTS);
    assert_eq!(
        outcome.groups,
        distinct.len(),
        "one group per (kind, fingerprint)"
    );
    assert_eq!(
        outcome.cold_groups,
        distinct.len(),
        "all cold on a fresh runtime"
    );
    for (i, (out, expect)) in outs.iter().zip(&expected).enumerate() {
        assert_eq!(
            out, expect,
            "job {i} deviates from the sequential front door"
        );
    }
    let stats = rt.stats();
    let distinct_solves = stream
        .iter()
        .filter(|(k, _)| *k == RequestKind::Solve)
        .map(|&(_, r)| r)
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert_eq!(stats.solves.builds, distinct_solves as u64);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.batch_jobs, REQUESTS as u64);

    // Replay the identical batch: zero cold groups, zero new builds, every
    // job outcome flagged cached, outputs unchanged.
    let mut outs2: Vec<Vec<f64>> = stream
        .iter()
        .map(|&(kind, _)| vec![0.0; if kind == RequestKind::Solve { ns } else { nl }])
        .collect();
    let jobs2: Vec<Job> = stream
        .iter()
        .zip(outs2.iter_mut())
        .map(|(&(kind, rank), out)| match kind {
            RequestKind::Solve => Job::solve(&factors[rank], &solve_bs[rank], out),
            RequestKind::Loop => {
                Job::linear(&specs[rank], lowers[rank].data(), &loop_rhs[rank], out)
            }
        })
        .collect();
    let warm = rt.submit_batch(jobs2);
    assert_eq!(warm.cold_groups, 0);
    assert!(warm
        .jobs
        .iter()
        .all(|j| j.as_ref().is_ok_and(JobOutcome::cached)));
    assert_eq!(
        rt.stats().solves.builds,
        distinct_solves as u64,
        "no rebuilds"
    );
    for (out, expect) in outs2.iter().zip(&expected) {
        assert_eq!(out, expect);
    }
}

/// The DoConsider acceptance criterion: a loop job submitted twice shows a
/// cache hit (builds == 1) with bit-exact output vs. direct `PlannedLoop`
/// execution.
#[test]
fn doconsider_loop_job_caches_and_matches_direct_planned_loop() {
    let l = pattern_set(1, 14, 9)[0].strict_lower();
    let n = l.nrows();
    let vals = l.data();
    let b = rhs(n, 3);

    // Direct execution: inspect → schedule → PlannedLoop::run.
    let graph = DepGraph::from_lower_triangular(&l).unwrap();
    let plan = DoConsider::from_lower_triangular(&l)
        .unwrap()
        .schedule(rtpl::Scheduling::Global, 2)
        .unwrap();
    let body = LinearBody::new(&graph, vals, &b);
    let pool = WorkerPool::new(2);
    let mut direct = vec![0.0; n];
    plan.run(&pool, ExecPolicy::SelfExecuting, &body, &mut direct);

    let rt = Runtime::new(test_cfg());
    let spec = DoConsider::from_lower_triangular(&l).unwrap().into_spec();

    // Generic-body loop job, twice.
    let mut out1 = vec![0.0; n];
    let mut out2 = vec![0.0; n];
    let first = rt.submit(Job::looped(&spec, &body, &mut out1)).unwrap();
    let second = rt.submit(Job::looped(&spec, &body, &mut out2)).unwrap();
    assert!(!first.cached() && second.cached());
    assert_eq!(rt.stats().loops.builds, 1, "one build for two submissions");
    assert_eq!(out1, direct, "cold loop job deviates from direct execution");
    assert_eq!(out2, direct, "warm loop job deviates from direct execution");

    // Compiled linear variant of the same structure, twice: builds == 1 in
    // its own cache, same bits.
    let mut out3 = vec![0.0; n];
    let mut out4 = vec![0.0; n];
    rt.submit(Job::<NoBody>::linear(&spec, vals, &b, &mut out3))
        .unwrap();
    let warm = rt
        .submit(Job::<NoBody>::linear(&spec, vals, &b, &mut out4))
        .unwrap();
    assert!(warm.cached());
    assert_eq!(rt.stats().linears.builds, 1);
    assert_eq!(out3, direct);
    assert_eq!(out4, direct);
}

/// A failing job (zero pivot in its factors) reports per-job and never
/// sinks the rest of its batch.
#[test]
fn batch_failures_are_isolated_per_job() {
    let good = factors_from_pattern(&pattern_set(1, 8, 5)[0]);
    let n = good.n();
    let mut bad = good.clone();
    // Zero a diagonal entry of U: plan construction rejects the pattern.
    let pos = bad.u.indptr()[2];
    bad.u.data_mut()[pos] = 0.0;
    assert_eq!(
        bad.u.row_indices(2)[0],
        2,
        "first entry of row 2 is its diagonal"
    );

    let b = rhs(n, 0);
    let mut x1 = vec![0.0; n];
    let mut x2 = vec![0.0; n];
    let mut x3 = vec![0.0; n];
    let rt = Runtime::new(test_cfg());
    let outcome = rt.submit_batch::<NoBody>(vec![
        Job::solve(&good, &b, &mut x1),
        Job::solve(&bad, &b, &mut x2),
        Job::solve(&good, &b, &mut x3),
    ]);
    assert_eq!(outcome.ok_count(), 2);
    assert!(outcome.jobs[0].is_ok());
    assert!(outcome.jobs[1].is_err(), "zero pivot must surface as Err");
    assert!(outcome.jobs[2].is_ok());
    // All three jobs share one fingerprint group (values don't key the
    // cache); the bad one fails at its own value gather, the good ones
    // still agree with the sequential front door.
    assert_eq!(outcome.groups, 1);
    // Order-independence: the poisoned job leading a COLD group (its
    // values would poison the group's plan build, which reads values for
    // the zero-pivot check) still must not sink its same-pattern peers —
    // the group falls back to per-job builds.
    let rt2 = Runtime::new(test_cfg());
    let mut y1 = vec![0.0; n];
    let mut y2 = vec![0.0; n];
    let outcome2 = rt2.submit_batch::<NoBody>(vec![
        Job::solve(&bad, &b, &mut y1),
        Job::solve(&good, &b, &mut y2),
    ]);
    assert!(outcome2.jobs[0].is_err(), "bad-first job must fail alone");
    assert!(
        outcome2.jobs[1].is_ok(),
        "good job behind a poisoned group leader must still run"
    );
    let rt_ref = Runtime::new(RuntimeConfig {
        policy: Some(ExecutorKind::Sequential),
        ..test_cfg()
    });
    let mut expect = vec![0.0; n];
    rt_ref.solve(&good, &b, &mut expect).unwrap();
    // Policies may differ between the two runtimes; results are bit-exact
    // across policies by construction.
    assert_eq!(x1, expect);
    assert_eq!(x3, expect);
}

/// An empty batch is a no-op, and `submit` on each Job variant agrees with
/// the matching direct front door.
#[test]
fn empty_batch_and_submit_parity() {
    let rt = Runtime::new(test_cfg());
    let outcome = rt.submit_batch::<NoBody>(Vec::new());
    assert_eq!(outcome.jobs.len(), 0);
    assert_eq!(outcome.groups, 0);
    assert_eq!(rt.stats().batch_jobs, 0);

    let f = factors_from_pattern(&pattern_set(1, 8, 21)[0]);
    let n = f.n();
    let b = rhs(n, 2);
    let mut via_submit = vec![0.0; n];
    let mut via_solve = vec![0.0; n];
    let o = rt
        .submit(Job::<NoBody>::solve(&f, &b, &mut via_submit))
        .unwrap();
    rt.solve(&f, &b, &mut via_solve).unwrap();
    assert_eq!(via_submit, via_solve);
    assert!(matches!(o, JobOutcome::Solve(_)));
    assert!(!o.cached(), "first request for the pattern must build");
}
