//! Acceptance tests for the compiled execution layout (PR 3 tentpole):
//! bit-exactness of `CompiledTriSolve` against both the uncompiled
//! `PlannedLoop`-based path and the sequential reference, over random DAGs
//! × every `ExecPolicy` arm × 1/2/4 processors.

use rtpl::executor::WorkerPool;
use rtpl::krylov::{CompiledTriSolve, ExecutorKind, SolveScratch, Sorting, TriangularSolvePlan};
use rtpl::sparse::gen::random_lower;
use rtpl::sparse::ilu::IluFactors;
use rtpl::sparse::Csr;

/// Solvable factors from a synthetic unit-lower-triangular dependency
/// matrix: `L` is its strict lower triangle, `U` its transpose's upper
/// triangle — structurally distinct sweeps, no factorization needed.
fn factors_from_pattern(m: &Csr) -> IluFactors {
    IluFactors {
        l: m.strict_lower(),
        u: m.transpose().upper(),
    }
}

fn compiled_for(factors: &IluFactors, nprocs: usize, sorting: Sorting) -> CompiledTriSolve {
    TriangularSolvePlan::new(factors, nprocs, ExecutorKind::SelfExecuting, sorting)
        .unwrap()
        .compile()
        .unwrap()
}

const ALL_KINDS: [ExecutorKind; 5] = [
    ExecutorKind::Sequential,
    ExecutorKind::Doacross,
    ExecutorKind::PreScheduled,
    ExecutorKind::PreScheduledElided,
    ExecutorKind::SelfExecuting,
];

/// The headline sweep: random DAGs × all four parallel policy arms (plus
/// the sequential kind) × 1/2/4 procs × all three sorting disciplines,
/// compiled vs `PlannedLoop` fallback vs sequential reference — all three
/// paths must agree **bit-exactly**.
#[test]
fn compiled_matches_fallback_and_reference_over_random_dags() {
    for (seed, n, deg) in [(101u64, 160usize, 4usize), (202, 240, 6), (303, 96, 3)] {
        let factors = factors_from_pattern(&random_lower(n, deg, seed));
        let n = factors.n();
        let b: Vec<f64> = (0..n)
            .map(|i| 1.0 + ((i * 29 + seed as usize) % 97) as f64 * 0.021)
            .collect();
        // Sequential reference from the uncompiled path.
        let reference = {
            let plan =
                TriangularSolvePlan::new(&factors, 1, ExecutorKind::Sequential, Sorting::Global)
                    .unwrap();
            let mut x = vec![0.0; n];
            let mut scratch = SolveScratch::new(n);
            plan.solve_with(
                None,
                ExecutorKind::Sequential,
                &factors,
                &b,
                &mut x,
                &mut scratch,
            )
            .unwrap();
            x
        };
        for sorting in [
            Sorting::Global,
            Sorting::LocalStriped,
            Sorting::LocalContiguous,
        ] {
            for nprocs in [1usize, 2, 4] {
                let plan =
                    TriangularSolvePlan::new(&factors, nprocs, ExecutorKind::Sequential, sorting)
                        .unwrap();
                let compiled = compiled_for(&factors, nprocs, sorting);
                let pool = WorkerPool::new(nprocs);
                let mut c_scratch = compiled.scratch();
                let mut f_scratch = SolveScratch::new(n);
                for kind in ALL_KINDS {
                    let mut x_c = vec![0.0; n];
                    compiled
                        .solve(Some(&pool), kind, &factors, &b, &mut x_c, &mut c_scratch)
                        .unwrap();
                    assert_eq!(
                        x_c, reference,
                        "seed {seed} {sorting:?}/{nprocs}/{kind:?}: compiled deviates"
                    );
                    let mut x_f = vec![0.0; n];
                    plan.solve_with(Some(&pool), kind, &factors, &b, &mut x_f, &mut f_scratch)
                        .unwrap();
                    assert_eq!(
                        x_f, reference,
                        "seed {seed} {sorting:?}/{nprocs}/{kind:?}: fallback deviates"
                    );
                }
            }
        }
    }
}

/// Wavefront coalescing sweep: the same random DAGs × every policy arm ×
/// 1/2/4 procs × all three sortings, with coalescing forced **on**
/// (a merge-everything-affordable grain) solved against the **uncoalesced**
/// plan's answer. Merged phases bake dependence order into the schedule
/// instead of synchronization — the numbers must not move by a bit, under
/// any discipline, while the phase counts must actually drop.
#[test]
fn coalesced_plans_match_uncoalesced_bit_exactly_over_the_sweep() {
    for (seed, n, deg) in [(404u64, 160usize, 4usize), (505, 96, 3)] {
        let factors = factors_from_pattern(&random_lower(n, deg, seed));
        let n = factors.n();
        let b: Vec<f64> = (0..n)
            .map(|i| 0.8 + ((i * 23 + seed as usize) % 83) as f64 * 0.017)
            .collect();
        for sorting in [
            Sorting::Global,
            Sorting::LocalStriped,
            Sorting::LocalContiguous,
        ] {
            for nprocs in [1usize, 2, 4] {
                let plain = compiled_for(&factors, nprocs, sorting);
                let coalesced = TriangularSolvePlan::new_with_grain(
                    &factors,
                    nprocs,
                    ExecutorKind::SelfExecuting,
                    sorting,
                    Some(64.0),
                )
                .unwrap()
                .compile()
                .unwrap();
                let (sl, su) = coalesced.plan().coalesce_stats();
                let (sl, su) = (sl.unwrap(), su.unwrap());
                assert!(
                    sl.phases_after < sl.phases_before && su.phases_after < su.phases_before,
                    "seed {seed} {sorting:?}/{nprocs}: grain 64 merged nothing ({sl:?}, {su:?})"
                );
                let pool = WorkerPool::new(nprocs);
                let mut p_scratch = plain.scratch();
                let mut c_scratch = coalesced.scratch();
                for kind in ALL_KINDS {
                    let mut x_plain = vec![0.0; n];
                    plain
                        .solve(
                            Some(&pool),
                            kind,
                            &factors,
                            &b,
                            &mut x_plain,
                            &mut p_scratch,
                        )
                        .unwrap();
                    let mut x_coal = vec![0.0; n];
                    coalesced
                        .solve(Some(&pool), kind, &factors, &b, &mut x_coal, &mut c_scratch)
                        .unwrap();
                    assert_eq!(
                        x_coal, x_plain,
                        "seed {seed} {sorting:?}/{nprocs}/{kind:?}: coalescing moved a bit"
                    );
                }
            }
        }
    }
}

/// The compiled plan is a function of structure only: refreshed numeric
/// values on an unchanged pattern flow through the per-call gather.
#[test]
fn compiled_value_refresh_is_bit_exact_with_fallback() {
    let base = random_lower(180, 5, 7);
    let factors = factors_from_pattern(&base);
    let n = factors.n();
    let compiled = compiled_for(&factors, 2, Sorting::Global);
    let pool = WorkerPool::new(2);
    let mut c_scratch = compiled.scratch();
    // Same structure, new values.
    let mut l2 = factors.l.clone();
    for (k, v) in l2.data_mut().iter_mut().enumerate() {
        *v += 0.01 * (k % 11) as f64;
    }
    let mut u2 = factors.u.clone();
    for (k, v) in u2.data_mut().iter_mut().enumerate() {
        *v *= 1.0 + 0.005 * (k % 7) as f64;
    }
    let f2 = IluFactors { l: l2, u: u2 };
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
    let plan =
        TriangularSolvePlan::new(&factors, 2, ExecutorKind::Sequential, Sorting::Global).unwrap();
    let mut f_scratch = SolveScratch::new(n);
    let mut expect = vec![0.0; n];
    plan.solve_with(
        None,
        ExecutorKind::Sequential,
        &f2,
        &b,
        &mut expect,
        &mut f_scratch,
    )
    .unwrap();
    for kind in ALL_KINDS {
        let mut x = vec![0.0; n];
        compiled
            .solve(Some(&pool), kind, &f2, &b, &mut x, &mut c_scratch)
            .unwrap();
        assert_eq!(x, expect, "{kind:?}: refreshed values deviate");
    }
}

/// The single-rhs fused sequential path (load folded into the sweep) is
/// bit-exact with the split load-then-run path and the sequential
/// reference, over random DAGs × plan processor counts. This gates the
/// runtime's lone-request fast path.
#[test]
fn fused_sequential_matches_split_and_reference_over_random_dags() {
    for (seed, n, deg) in [(11u64, 150usize, 4usize), (22, 220, 6), (33, 80, 3)] {
        let factors = factors_from_pattern(&random_lower(n, deg, seed));
        let n = factors.n();
        let b: Vec<f64> = (0..n)
            .map(|i| 0.5 + ((i * 31 + seed as usize) % 89) as f64 * 0.013)
            .collect();
        let reference = {
            let plan =
                TriangularSolvePlan::new(&factors, 1, ExecutorKind::Sequential, Sorting::Global)
                    .unwrap();
            let mut x = vec![0.0; n];
            let mut scratch = SolveScratch::new(n);
            plan.solve_with(
                None,
                ExecutorKind::Sequential,
                &factors,
                &b,
                &mut x,
                &mut scratch,
            )
            .unwrap();
            x
        };
        for nprocs in [1usize, 2, 4] {
            let compiled = compiled_for(&factors, nprocs, Sorting::Global);
            // Split path: explicit load, then run.
            let mut x_split = vec![0.0; n];
            let mut s_split = compiled.scratch();
            compiled
                .solve(
                    None,
                    ExecutorKind::Sequential,
                    &factors,
                    &b,
                    &mut x_split,
                    &mut s_split,
                )
                .unwrap();
            // Fused path, on a fresh never-loaded scratch.
            let mut x_fused = vec![0.0; n];
            let mut s_fused = compiled.scratch();
            compiled
                .solve_fused_sequential(&factors, &b, &mut x_fused, &mut s_fused)
                .unwrap();
            assert_eq!(x_fused, x_split, "seed {seed}/{nprocs}: fused != split");
            assert_eq!(
                x_fused, reference,
                "seed {seed}/{nprocs}: fused != reference"
            );
            // And again on the now-dirty scratch (no stale-state leakage).
            let mut x_again = vec![0.0; n];
            compiled
                .solve_fused_sequential(&factors, &b, &mut x_again, &mut s_fused)
                .unwrap();
            assert_eq!(
                x_again, reference,
                "seed {seed}/{nprocs}: fused rerun deviates"
            );
        }
    }
}

/// Many threads share one compiled plan (`Arc`), each with its own
/// scratch — results stay bit-exact under genuine concurrency.
#[test]
fn shared_compiled_plan_with_independent_scratches_is_bit_exact() {
    use std::sync::Arc;
    let factors = factors_from_pattern(&random_lower(200, 5, 99));
    let n = factors.n();
    let compiled = Arc::new(compiled_for(&factors, 2, Sorting::Global));
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64 * 0.05).collect();
    let mut reference = vec![0.0; n];
    compiled
        .solve(
            None,
            ExecutorKind::Sequential,
            &factors,
            &b,
            &mut reference,
            &mut compiled.scratch(),
        )
        .unwrap();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let compiled = Arc::clone(&compiled);
            let factors = &factors;
            let b = &b;
            let reference = &reference;
            scope.spawn(move || {
                let pool = WorkerPool::new(2);
                let mut scratch = compiled.scratch();
                let kind = ALL_KINDS[t % ALL_KINDS.len()];
                let pool_opt = Some(&pool);
                for _ in 0..8 {
                    let mut x = vec![0.0; compiled.n()];
                    compiled
                        .solve(pool_opt, kind, factors, b, &mut x, &mut scratch)
                        .unwrap();
                    assert_eq!(&x, reference, "thread {t} ({kind:?}) deviates");
                }
            });
        }
    });
}
