//! Property tests: every parallel executor computes exactly what the
//! sequential loop computes, on arbitrary forward dependence DAGs, any
//! schedule, any processor count.

use proptest::prelude::*;
use rtpl::executor::{doacross, pre_scheduled, self_executing, WorkerPool};
use rtpl::inspector::{DepGraph, Partition, Schedule, Wavefronts};

/// Strategy: a random forward DAG of `n` indices with up to `maxdeg`
/// dependences each.
fn dag_strategy(nmax: usize, maxdeg: usize) -> impl Strategy<Value = DepGraph> {
    (2..nmax).prop_flat_map(move |n| {
        let lists: Vec<_> = (0..n)
            .map(|i| {
                if i == 0 {
                    Just(Vec::new()).boxed()
                } else {
                    prop::collection::vec(0..(i as u32), 0..=maxdeg.min(i))
                        .prop_map(|mut v| {
                            v.sort_unstable();
                            v.dedup();
                            v
                        })
                        .boxed()
                }
            })
            .collect();
        lists.prop_map(move |ls| DepGraph::from_lists(n, ls).unwrap())
    })
}

/// The loop body: a deterministic function of the index and its operands.
fn run_body(g: &DepGraph, i: usize, get: impl Fn(usize) -> f64) -> f64 {
    let mut acc = (i as f64 + 1.0).sqrt();
    for &d in g.deps(i) {
        acc += 0.25 * get(d as usize) + 0.01 * (d as f64);
    }
    acc
}

fn sequential_reference(g: &DepGraph) -> Vec<f64> {
    let n = g.n();
    let mut out = vec![0.0; n];
    for i in 0..n {
        out[i] = run_body(g, i, |j| out[j]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, .. ProptestConfig::default()
    })]

    #[test]
    fn self_executing_matches_sequential(g in dag_strategy(60, 4), p in 1usize..4) {
        let wf = Wavefronts::compute(&g).unwrap();
        let s = Schedule::global(&wf, p).unwrap();
        s.validate(&g).unwrap();
        let pool = WorkerPool::new(p);
        let mut out = vec![0.0; g.n()];
        let gref = &g;
        self_executing(&pool, &s, &|i, src| run_body(gref, i, |j| src.get(j)), &mut out);
        prop_assert_eq!(out, sequential_reference(&g));
    }

    #[test]
    fn pre_scheduled_matches_sequential(g in dag_strategy(60, 4), p in 1usize..4) {
        let wf = Wavefronts::compute(&g).unwrap();
        let s = Schedule::global(&wf, p).unwrap();
        let pool = WorkerPool::new(p);
        let mut out = vec![0.0; g.n()];
        let gref = &g;
        pre_scheduled(&pool, &s, &|i, src| run_body(gref, i, |j| src.get(j)), &mut out);
        prop_assert_eq!(out, sequential_reference(&g));
    }

    #[test]
    fn local_schedules_match_sequential(g in dag_strategy(50, 3), p in 1usize..4) {
        let wf = Wavefronts::compute(&g).unwrap();
        let pool = WorkerPool::new(p);
        for part in [
            Partition::striped(g.n(), p).unwrap(),
            Partition::contiguous(g.n(), p).unwrap(),
        ] {
            let s = Schedule::local(&wf, &part).unwrap();
            s.validate(&g).unwrap();
            let mut out = vec![0.0; g.n()];
            let gref = &g;
            self_executing(&pool, &s, &|i, src| run_body(gref, i, |j| src.get(j)), &mut out);
            prop_assert_eq!(out, sequential_reference(&g));
        }
    }

    #[test]
    fn doacross_matches_sequential(g in dag_strategy(50, 3), p in 1usize..4) {
        let pool = WorkerPool::new(p);
        let mut out = vec![0.0; g.n()];
        let gref = &g;
        doacross(&pool, g.n(), &|i, src| run_body(gref, i, |j| src.get(j)), &mut out);
        prop_assert_eq!(out, sequential_reference(&g));
    }

    #[test]
    fn wavefronts_valid_on_random_dags(g in dag_strategy(80, 5)) {
        let wf = Wavefronts::compute(&g).unwrap();
        wf.validate(&g).unwrap();
        // Counting-sorted list is a permutation in nondecreasing wavefront order.
        let list = wf.sorted_list();
        let mut seen = vec![false; g.n()];
        let mut prev = 0u32;
        for &i in &list {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
            let w = wf.of(i as usize);
            prop_assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn parallel_wavefront_sweep_matches(g in dag_strategy(60, 4), t in 2usize..4) {
        let seq = Wavefronts::compute(&g).unwrap();
        let par = Wavefronts::compute_parallel(&g, t).unwrap();
        prop_assert_eq!(seq, par);
    }
}
