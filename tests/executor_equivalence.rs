//! Executor-equivalence property tests: every parallel execution policy
//! computes exactly what the sequential loop computes, on arbitrary forward
//! dependence DAGs, under every scheduling strategy and processor count.
//!
//! The sweep is the PR's central invariant: **random DAGs × all
//! [`ExecPolicy`] variants × all [`Scheduling`] strategies × 1/2/4
//! processors**, every combination checked bit-for-bit against the
//! sequential reference through the single `PlannedLoop::run` entry point.
//! DAG generation is deterministic in the seed (in-tree [`SmallRng`]), so
//! any failure reproduces exactly.

use rtpl::executor::{self_scheduling, Chunking, WorkerPool};
use rtpl::inspector::{DepGraph, Wavefronts};
use rtpl::prelude::*;
use rtpl::sparse::rng::SmallRng;

/// A random forward DAG of `2..nmax` indices with up to `maxdeg`
/// dependences each (every dependence targets a strictly smaller index —
/// the paper's start-time-schedulable setting).
fn random_dag(rng: &mut SmallRng, nmax: usize, maxdeg: usize) -> DepGraph {
    let n = rng.gen_range_usize(2, nmax);
    let lists: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            if i == 0 {
                Vec::new()
            } else {
                let deg = rng.gen_range_inclusive_usize(0, maxdeg.min(i));
                let mut v: Vec<u32> = (0..deg).map(|_| rng.gen_range_usize(0, i) as u32).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        })
        .collect();
    DepGraph::from_lists(n, lists).unwrap()
}

/// The loop body: a deterministic function of the index and its operands.
struct DagBody<'a>(&'a DepGraph);

impl LoopBody for DagBody<'_> {
    fn eval<S: ValueSource>(&self, i: usize, src: &S) -> f64 {
        let mut acc = (i as f64 + 1.0).sqrt();
        for &d in self.0.deps(i) {
            acc += 0.25 * src.get(d as usize) + 0.01 * (d as f64);
        }
        acc
    }
}

/// Sequential reference through the library's own reference executor —
/// the one copy of the body ([`DagBody`]) serves every discipline.
fn sequential_reference(g: &DepGraph) -> Vec<f64> {
    let mut out = vec![0.0; g.n()];
    rtpl::executor::sequential_body(g.n(), &DagBody(g), &mut out);
    out
}

/// `plan.run`, and — with `--features verify-trace` — the same run recorded
/// through the executor's access-trace hooks and replayed through the
/// rtpl-verify vector-clock race oracle. The sweep then proves not just
/// "same answers" but "no unordered conflicting accesses" for every
/// policy × strategy × processor-count combination.
fn run_checked(
    plan: &PlannedLoop,
    pool: &WorkerPool,
    policy: ExecPolicy,
    body: &DagBody,
    out: &mut [f64],
) -> ExecReport {
    #[cfg(feature = "verify-trace")]
    {
        let (report, events) = rtpl::executor::trace::capture(|| plan.run(pool, policy, body, out));
        rtpl::verify::race::check_trace(pool.nworkers(), &events)
            .unwrap_or_else(|e| panic!("{policy:?} x{}: race oracle: {e}", pool.nworkers()));
        report
    }
    #[cfg(not(feature = "verify-trace"))]
    plan.run(pool, policy, body, out)
}

/// The satellite sweep: policies × strategies × processor counts on random
/// DAGs, all through `PlannedLoop::run`.
#[test]
fn every_policy_strategy_and_proc_count_matches_sequential() {
    let mut rng = SmallRng::seed_from_u64(0xE9);
    for case in 0..24 {
        let g = random_dag(&mut rng, 60, 4);
        let expect = sequential_reference(&g);
        for p in [1usize, 2, 4] {
            let pool = WorkerPool::new(p);
            for strategy in Scheduling::ALL {
                let plan = DoConsider::inspect(g.clone())
                    .unwrap()
                    .schedule(strategy, p)
                    .unwrap();
                for policy in ExecPolicy::ALL {
                    let mut out = vec![0.0; g.n()];
                    let report =
                        run_checked(&plan, &pool, policy, &DagBody(plan.graph()), &mut out);
                    assert_eq!(
                        out, expect,
                        "case {case}: {policy:?}/{strategy:?} p={p} diverged"
                    );
                    assert_eq!(
                        report.total_iters() as usize,
                        g.n(),
                        "case {case}: {policy:?}/{strategy:?} p={p} iteration count"
                    );
                }
            }
        }
    }
}

/// Repeated runs of one plan (the paper's plan-once/run-many economics)
/// stay correct: the epoch-based buffer reuse must never leak values
/// between runs or policies.
#[test]
fn interleaved_policies_on_one_plan_stay_equivalent() {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..6 {
        let g = random_dag(&mut rng, 50, 3);
        let expect = sequential_reference(&g);
        let pool = WorkerPool::new(2);
        let plan = DoConsider::inspect(g.clone())
            .unwrap()
            .schedule(Scheduling::Global, 2)
            .unwrap();
        for round in 0..3 {
            for policy in ExecPolicy::ALL {
                let mut out = vec![0.0; g.n()];
                run_checked(&plan, &pool, policy, &DagBody(plan.graph()), &mut out);
                assert_eq!(out, expect, "round {round} {policy:?}");
            }
        }
    }
}

/// The dynamic self-scheduling executor (related-work baseline) agrees too.
#[test]
fn self_scheduling_matches_sequential() {
    let mut rng = SmallRng::seed_from_u64(0x7E57);
    for _ in 0..12 {
        let g = random_dag(&mut rng, 50, 3);
        let expect = sequential_reference(&g);
        let order = Wavefronts::compute(&g).unwrap().sorted_list();
        for p in [1usize, 2, 4] {
            let pool = WorkerPool::new(p);
            for chunking in [Chunking::Unit, Chunking::Guided, Chunking::Fixed(3)] {
                let mut out = vec![0.0; g.n()];
                let body = DagBody(&g);
                self_scheduling(
                    &pool,
                    &order,
                    chunking,
                    &|i, src| body.eval(i, src),
                    &mut out,
                );
                assert_eq!(out, expect, "{chunking:?} p={p}");
            }
        }
    }
}

/// Wavefront invariants on random DAGs (kept from the original suite).
#[test]
fn wavefronts_valid_on_random_dags() {
    let mut rng = SmallRng::seed_from_u64(0x3F);
    for _ in 0..24 {
        let g = random_dag(&mut rng, 80, 5);
        let wf = Wavefronts::compute(&g).unwrap();
        wf.validate(&g).unwrap();
        // Counting-sorted list is a permutation in nondecreasing wavefront
        // order.
        let list = wf.sorted_list();
        let mut seen = vec![false; g.n()];
        let mut prev = 0u32;
        for &i in &list {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
            let w = wf.of(i as usize);
            assert!(w >= prev);
            prev = w;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

/// The parallel wavefront sweep agrees with the sequential one.
#[test]
fn parallel_wavefront_sweep_matches() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for _ in 0..16 {
        let g = random_dag(&mut rng, 60, 4);
        let t = rng.gen_range_usize(2, 4);
        let seq = Wavefronts::compute(&g).unwrap();
        let par = Wavefronts::compute_parallel(&g, t).unwrap();
        assert_eq!(seq, par);
    }
}
