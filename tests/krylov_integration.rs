//! Integration tests for the full PCGPAK-substitute pipeline: parallel
//! factorization + parallel triangular solves inside CG/GMRES on the
//! paper's problems.

use rtpl::executor::WorkerPool;
use rtpl::krylov::factor::{parallel_iluk, FactorSync};
use rtpl::krylov::{
    cg, gmres, ExecutorKind, KrylovConfig, Preconditioner, Sorting, TriangularSolvePlan,
};
use rtpl::sparse::gen::{grid2d_5pt, laplacian_5pt, Coeffs2};
use rtpl::sparse::{iluk, Csr};
use rtpl::workload::{ProblemId, TestProblem};

fn residual(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
    let mut r = vec![0.0; a.nrows()];
    a.matvec(x, &mut r).unwrap();
    for i in 0..r.len() {
        r[i] = b[i] - r[i];
    }
    rtpl::sparse::dense::norm2(&r) / rtpl::sparse::dense::norm2(b).max(1e-300)
}

#[test]
fn parallel_factorization_matches_sequential_on_spe2() {
    let p = TestProblem::build(ProblemId::Spe2);
    let seq = iluk(&p.matrix, 0).unwrap();
    let pool = WorkerPool::new(3);
    let par = parallel_iluk(&pool, &p.matrix, 0, FactorSync::SelfExecuting).unwrap();
    assert_eq!(seq.l.indices(), par.l.indices());
    let dl = rtpl::sparse::dense::max_abs_diff(seq.l.data(), par.l.data());
    let du = rtpl::sparse::dense::max_abs_diff(seq.u.data(), par.u.data());
    assert!(dl < 1e-12 && du < 1e-12, "dl={dl} du={du}");
}

#[test]
fn gmres_ilu_converges_on_spe4_with_parallel_solves() {
    let p = TestProblem::build(ProblemId::Spe4);
    let a = &p.matrix;
    let n = a.nrows();
    let nprocs = 2;
    let pool = WorkerPool::new(nprocs);
    let f = parallel_iluk(&pool, a, 0, FactorSync::SelfExecuting).unwrap();
    let plan =
        TriangularSolvePlan::new(&f, nprocs, ExecutorKind::SelfExecuting, Sorting::Global).unwrap();
    let m = Preconditioner::Ilu(plan);
    let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
    let mut x = vec![0.0; n];
    let cfg = KrylovConfig {
        tol: 1e-8,
        max_iter: 400,
        restart: 25,
    };
    let stats = gmres(&pool, a, &b, &mut x, &m, &cfg).unwrap();
    assert!(stats.converged, "{stats:?}");
    assert!(residual(a, &b, &x) < 1e-7);
}

#[test]
fn executor_choice_does_not_change_convergence() {
    // The numerical trajectory must be identical for every executor: same
    // preconditioner, same arithmetic, different synchronization only.
    let a = grid2d_5pt(14, 14, |x, y| Coeffs2 {
        ax: 1.0 + x,
        ay: 1.0 + y,
        cx: 3.0,
        cy: -2.0,
        r: 0.5,
    });
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
    let cfg = KrylovConfig {
        tol: 1e-9,
        max_iter: 200,
        restart: 20,
    };
    let f = iluk(&a, 0).unwrap();
    let mut iters = Vec::new();
    for kind in [
        ExecutorKind::Sequential,
        ExecutorKind::PreScheduled,
        ExecutorKind::SelfExecuting,
        ExecutorKind::Doacross,
    ] {
        let nprocs = 2;
        let pool = WorkerPool::new(nprocs);
        let plan = TriangularSolvePlan::new(&f, nprocs, kind, Sorting::LocalStriped).unwrap();
        let m = Preconditioner::Ilu(plan);
        let mut x = vec![0.0; n];
        let stats = gmres(&pool, &a, &b, &mut x, &m, &cfg).unwrap();
        assert!(stats.converged, "{kind:?}: {stats:?}");
        iters.push(stats.iterations);
    }
    assert!(
        iters.windows(2).all(|w| w[0] == w[1]),
        "iteration counts must agree: {iters:?}"
    );
}

#[test]
fn higher_fill_level_reduces_iterations() {
    // The DESIGN.md ablation: ILU(k) with larger k is a better
    // preconditioner (fewer iterations) at higher factor cost.
    let a = laplacian_5pt(24, 24);
    let n = a.nrows();
    let b = vec![1.0; n];
    let pool = WorkerPool::new(2);
    let cfg = KrylovConfig::default();
    let mut iter_counts = Vec::new();
    for level in [0usize, 1, 2] {
        let f = iluk(&a, level).unwrap();
        let plan =
            TriangularSolvePlan::new(&f, 2, ExecutorKind::SelfExecuting, Sorting::Global).unwrap();
        let m = Preconditioner::Ilu(plan);
        let mut x = vec![0.0; n];
        let stats = cg(&pool, &a, &b, &mut x, &m, &cfg).unwrap();
        assert!(stats.converged);
        iter_counts.push(stats.iterations);
    }
    assert!(
        iter_counts[2] <= iter_counts[1] && iter_counts[1] <= iter_counts[0],
        "iterations should not increase with fill level: {iter_counts:?}"
    );
}

#[test]
fn jacobi_preconditioner_also_works() {
    let a = laplacian_5pt(12, 12);
    let n = a.nrows();
    let b = vec![1.0; n];
    let pool = WorkerPool::new(2);
    let m = Preconditioner::jacobi(&a).unwrap();
    let mut x = vec![0.0; n];
    let stats = cg(&pool, &a, &b, &mut x, &m, &KrylovConfig::default()).unwrap();
    assert!(stats.converged);
    assert!(residual(&a, &b, &x) < 1e-7);
}

#[test]
fn amortization_many_solves_one_inspection() {
    // The paper's key economics: the sort is paid once, then reused. Run 10
    // right-hand sides through one plan and verify all.
    let a = laplacian_5pt(16, 16);
    let f = iluk(&a, 0).unwrap();
    let nprocs = 2;
    let pool = WorkerPool::new(nprocs);
    let plan =
        TriangularSolvePlan::new(&f, nprocs, ExecutorKind::SelfExecuting, Sorting::Global).unwrap();
    let n = a.nrows();
    let mut work = vec![0.0; n];
    for s in 0..10 {
        let b: Vec<f64> = (0..n).map(|i| ((i + s) as f64 * 0.07).sin()).collect();
        let mut x = vec![0.0; n];
        plan.solve(&pool, &b, &mut x, &mut work);
        // L U x == b exactly (triangular solves are direct).
        let lu = f.to_dense_product();
        let r = lu.matvec(&x);
        assert!(rtpl::sparse::dense::max_abs_diff(&r, &b) < 1e-9, "rhs {s}");
    }
}
