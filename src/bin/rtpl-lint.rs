//! rtpl-lint: the repo's invariant lint.
//!
//! A tokenizer-level pass (comments, string/char literals, and
//! `#[cfg(test)]` spans are masked out before matching — no false hits
//! from prose or test code) over every `src/` tree in the workspace,
//! enforcing four local invariants that `clippy` does not:
//!
//! 1. **`unsafe` is justified** — every `unsafe` token must have a
//!    `// SAFETY:` comment (or a `# Safety` doc contract, for `unsafe fn`
//!    declarations) within the preceding few lines.
//! 2. **No `unwrap`/`expect` debt in the service path** — in
//!    `crates/{server,runtime,store}/src`, `.unwrap()` is banned outright
//!    and `.expect(...)` is allowed only for genuine invariants (message
//!    starting with `"invariant: "`) or with an explicit `// PANIC:`
//!    justification on the preceding lines.
//! 3. **Atomic orderings stay where they are reviewed** — files using
//!    `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` must be on the
//!    in-lint allowlist (the modules whose protocols are documented);
//!    anywhere else each use needs an `// ORDERING:` comment.
//! 4. **No `static mut`**, anywhere, ever.
//!
//! Exit status 0 when clean; 1 with one `path:line: rule: message` per
//! finding otherwise. Run from anywhere: the workspace root is baked in
//! at compile time via `CARGO_MANIFEST_DIR`.

use std::path::{Path, PathBuf};

/// Files whose atomic-ordering protocols are documented and reviewed in
/// place; a new file that needs atomics either joins this list (with its
/// protocol written down) or justifies each use with `// ORDERING:`.
const ORDERING_ALLOWLIST: &[&str] = &[
    "crates/bench/src/bin/server_load.rs",
    "crates/executor/src/barrier.rs",
    "crates/executor/src/cancel.rs",
    "crates/executor/src/compiled.rs",
    "crates/executor/src/doacross.rs",
    "crates/executor/src/doall.rs",
    "crates/executor/src/planned.rs",
    "crates/executor/src/pool.rs",
    "crates/executor/src/presched.rs",
    "crates/executor/src/rows.rs",
    "crates/executor/src/selfexec.rs",
    "crates/executor/src/selfsched.rs",
    "crates/executor/src/shared.rs",
    "crates/executor/src/trace.rs",
    "crates/inspector/src/wavefront.rs",
    "crates/runtime/src/batch.rs",
    "crates/runtime/src/cache.rs",
    "crates/runtime/src/pools.rs",
    "crates/runtime/src/service.rs",
    "crates/server/src/histogram.rs",
    "crates/server/src/server.rs",
    "crates/sim/src/calibrate.rs",
    "crates/sparse/src/failpoint.rs",
    "crates/store/src/lib.rs",
];

/// Crates whose non-test code must not carry panic debt (rule 2).
const NO_PANIC_ROOTS: &[&str] = &[
    "crates/server/src",
    "crates/runtime/src",
    "crates/store/src",
];

const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// How far above a flagged token a justifying comment may sit. Eight lines
/// covers a doc contract plus a couple of attributes between it and the
/// item (`# Safety` → `#[allow]` → `#[inline]` → `pub unsafe fn`).
const JUSTIFY_WINDOW: usize = 8;

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_sources(&root, &root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    for rel in &files {
        let path = root.join(rel);
        match std::fs::read_to_string(&path) {
            Ok(src) => lint_file(rel, &src, &mut findings),
            Err(e) => findings.push(format!("{}:0: io: cannot read: {e}", rel.display())),
        }
    }

    if findings.is_empty() {
        println!("rtpl-lint: {} files clean", files.len());
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "rtpl-lint: {} finding(s) across {} files scanned",
            findings.len(),
            files.len()
        );
        std::process::exit(1);
    }
}

/// Every `.rs` file under a `src/` directory of the workspace (the root
/// package and each `crates/*` member); `tests/`, `examples/`, `benches/`,
/// and `target/` are out of scope by construction.
fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            let in_src = rel.components().any(|c| c.as_os_str() == "src");
            if in_src
                || name == "src"
                || name == "crates"
                || rel.parent() == Some(Path::new("crates"))
            {
                collect_sources(root, &path, out);
            }
        } else if name.ends_with(".rs") && rel.components().any(|c| c.as_os_str() == "src") {
            out.push(rel);
        }
    }
}

fn lint_file(rel: &Path, src: &str, findings: &mut Vec<String>) {
    let masked = mask_tests(&mask_lexical(src));
    debug_assert_eq!(masked.len(), src.len(), "masking must preserve offsets");
    let rel_str = rel.to_string_lossy().replace('\\', "/");

    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            src.char_indices()
                .filter(|&(_, c)| c == '\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let line_of = |off: usize| line_starts.partition_point(|&s| s <= off);
    let raw_lines: Vec<&str> = src.lines().collect();
    // True if any of the `JUSTIFY_WINDOW` raw lines ending at `line`
    // (1-based) contains one of the needles.
    let justified = |line: usize, needles: &[&str]| {
        let hi = line.min(raw_lines.len());
        let lo = hi.saturating_sub(JUSTIFY_WINDOW + 1);
        raw_lines[lo..hi]
            .iter()
            .any(|l| needles.iter().any(|n| l.contains(n)))
    };

    // Rule 1: `unsafe` needs a SAFETY justification.
    for off in find_word(&masked, "unsafe") {
        let line = line_of(off);
        if !justified(line, &["SAFETY:", "# Safety"]) {
            findings.push(format!(
                "{rel_str}:{line}: unsafe-undocumented: `unsafe` without a \
                 `// SAFETY:` comment or `# Safety` contract nearby"
            ));
        }
    }

    // Rule 4: `static mut` is banned outright.
    for off in find_word(&masked, "static") {
        let rest = masked[off + "static".len()..].trim_start();
        if rest.starts_with("mut ") {
            let line = line_of(off);
            findings.push(format!(
                "{rel_str}:{line}: static-mut: `static mut` is banned — use an \
                 atomic, a `Mutex`, or `OnceLock`"
            ));
        }
    }

    // Rule 3: atomic orderings only in reviewed files (or justified).
    if !ORDERING_ALLOWLIST.contains(&rel_str.as_str()) {
        for pat in ATOMIC_ORDERINGS {
            for off in find_all(&masked, pat) {
                let line = line_of(off);
                if !justified(line, &["ORDERING:"]) {
                    findings.push(format!(
                        "{rel_str}:{line}: ordering-unreviewed: `{pat}` outside the \
                         allowlist needs an `// ORDERING:` comment (or add the file \
                         to rtpl-lint's allowlist with its protocol documented)"
                    ));
                }
            }
        }
    }

    // Rule 2: no panic debt in the service path.
    if NO_PANIC_ROOTS.iter().any(|r| rel_str.starts_with(r)) {
        for off in find_all(&masked, ".unwrap()") {
            let line = line_of(off);
            if !justified(line, &["PANIC:"]) {
                findings.push(format!(
                    "{rel_str}:{line}: unwrap-debt: `.unwrap()` in service-path \
                     code — propagate the error, use `unwrap_or_else`, or justify \
                     with `// PANIC:`"
                ));
            }
        }
        for off in find_all(&masked, ".expect(") {
            // The message must brand the expect as an invariant; read it
            // from the *raw* source (the masked copy blanks literals).
            let after = src[off + ".expect(".len()..].trim_start();
            if after.starts_with("\"invariant: ") {
                continue;
            }
            let line = line_of(off);
            if !justified(line, &["PANIC:"]) {
                findings.push(format!(
                    "{rel_str}:{line}: expect-debt: `.expect(...)` in service-path \
                     code — message must start with \"invariant: \" or the call \
                     must carry a `// PANIC:` justification"
                ));
            }
        }
    }
}

/// Byte offsets of every occurrence of `pat` in `s`.
fn find_all(s: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = s[from..].find(pat) {
        out.push(from + i);
        from += i + pat.len();
    }
    out
}

/// Like [`find_all`], but only matches standing alone as a word (so
/// `unsafe` does not match inside `unsafe_op_in_unsafe_fn`).
fn find_word(s: &str, word: &str) -> Vec<usize> {
    let ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    find_all(s, word)
        .into_iter()
        .filter(|&i| {
            let b = s.as_bytes();
            let before_ok = i == 0 || !ident(b[i - 1]);
            let after = i + word.len();
            let after_ok = after >= b.len() || !ident(b[after]);
            before_ok && after_ok
        })
        .collect()
}

/// Replaces comment bodies and string/char-literal contents with spaces,
/// preserving every byte offset and newline, so substring matching over the
/// result sees only real code tokens.
fn mask_lexical(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    // Pushes `b[i..j]` blanked (newlines kept), advances to `j`.
    let blank = |out: &mut Vec<u8>, b: &[u8], i: usize, j: usize| {
        for &c in &b[i..j] {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let j = src[i..].find('\n').map_or(b.len(), |k| i + k);
                blank(&mut out, b, i, j);
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comments nest in Rust.
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, b, i, j);
                i = j;
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let (hash_start, hashes) = raw_string_hashes(b, i);
                // Emit the prefix (`r`, `br`, hashes, opening quote) as-is.
                let quote = hash_start + hashes;
                out.extend_from_slice(&b[i..=quote]);
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let body = quote + 1;
                let j = find_bytes(&b[body..], &closer).map_or(b.len(), |k| body + k);
                blank(&mut out, b, body, j);
                let end = (j + closer.len()).min(b.len());
                out.extend_from_slice(&b[j..end]);
                i = end;
            }
            b'"' => {
                out.push(b'"');
                let mut j = i + 1;
                while j < b.len() && b[j] != b'"' {
                    j += if b[j] == b'\\' { 2 } else { 1 };
                }
                blank(&mut out, b, i + 1, j.min(b.len()));
                if j < b.len() {
                    out.push(b'"');
                    j += 1;
                }
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with `'` after
                // one (possibly escaped) char; a lifetime never closes.
                let close = if i + 1 < b.len() && b[i + 1] == b'\\' {
                    src[i + 2..].find('\'').map(|k| i + 2 + k)
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    Some(i + 2)
                } else {
                    None
                };
                match close {
                    Some(j) => {
                        out.push(b'\'');
                        blank(&mut out, b, i + 1, j);
                        out.push(b'\'');
                        i = j + 1;
                    }
                    None => {
                        out.push(b'\'');
                        i += 1;
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("masking only replaces ASCII bytes with spaces")
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"...", r#"..."#, br"...", b"..." is NOT raw (plain-string arm handles
    // the body after the prefix byte, which is fine: contents still masked).
    let j = if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'r' {
        i + 1
    } else {
        i
    };
    if b[j] != b'r' {
        return false;
    }
    // An `r` only opens a raw string when not part of an identifier.
    if i > 0 && (b[i - 1] == b'_' || b[i - 1].is_ascii_alphanumeric()) {
        return false;
    }
    let mut k = j + 1;
    while k < b.len() && b[k] == b'#' {
        k += 1;
    }
    k < b.len() && b[k] == b'"'
}

fn raw_string_hashes(b: &[u8], i: usize) -> (usize, usize) {
    let j = if b[i] == b'b' { i + 2 } else { i + 1 };
    let mut k = j;
    while k < b.len() && b[k] == b'#' {
        k += 1;
    }
    (j, k - j)
}

fn find_bytes(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Blanks every `#[cfg(test)]`-gated item (the following brace-matched
/// block, or through the terminating `;` for block-less items) in an
/// already lexically-masked source, so test code is exempt from the rules.
fn mask_tests(masked: &str) -> String {
    let mut out = masked.as_bytes().to_vec();
    for start in find_all(masked, "#[cfg(test)]") {
        let mut j = start + "#[cfg(test)]".len();
        let b = masked.as_bytes();
        // Scan to the item's opening brace, or its `;` if it has no block.
        let mut open = None;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = match open {
            Some(o) => {
                let mut depth = 0usize;
                let mut k = o;
                loop {
                    if k >= b.len() {
                        break k;
                    }
                    match b[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => (j + 1).min(b.len()),
        };
        for c in &mut out[start..end] {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    }
    String::from_utf8(out).expect("blanking only replaces ASCII bytes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_strings_and_test_mods() {
        let src = r##"
// unsafe in a comment
let s = "unsafe in a string";
let r = r#"unsafe raw"#;
let c = 'u';
#[cfg(test)]
mod tests {
    fn f() { x.unwrap(); }
}
"##;
        let m = mask_tests(&mask_lexical(src));
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("unsafe"));
        assert!(!m.contains(".unwrap()"));
    }

    #[test]
    fn word_boundaries_exempt_the_lint_attribute() {
        let m = mask_lexical("#![deny(unsafe_op_in_unsafe_fn)]\nunsafe { x }\n");
        let hits = find_word(&m, "unsafe");
        assert_eq!(hits.len(), 1);
        assert_eq!(&m[hits[0]..hits[0] + 6], "unsafe");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = mask_lexical("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(m.contains("'a"), "lifetimes must survive masking: {m}");
    }

    #[test]
    fn service_path_expects_must_be_invariants() {
        let mut findings = Vec::new();
        lint_file(
            Path::new("crates/runtime/src/x.rs"),
            "fn f() { y.expect(\"oops\"); }\n",
            &mut findings,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("expect-debt"));

        findings.clear();
        lint_file(
            Path::new("crates/runtime/src/x.rs"),
            "fn f() { y.expect(\"invariant: held\"); }\n",
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
