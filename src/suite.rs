//! Empty library target for the `rtpl-suite` package, which exists only to
//! host the repo-root integration tests (`tests/`) and examples
//! (`examples/`). All functionality lives in the workspace crates; start at
//! the [`rtpl`] facade.

pub use rtpl;
